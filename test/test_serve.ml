(* Foray_serve: the forayd daemon, its wire protocol, the model cache and
   the client-isolation guarantees — plus unit coverage of the JSON reader
   and the byte-bounded LRU it is built on. *)

module Serve = Foray_serve.Serve
module Json = Foray_serve.Json
module Lru = Foray_serve.Lru
module Parallel = Foray_util.Parallel

(* ---- Lru ------------------------------------------------------------- *)

let t_lru_basics () =
  let l = Lru.create ~max_bytes:100 in
  Alcotest.(check int) "fresh cache empty" 0 (Lru.entries l);
  ignore (Lru.add l ~key:"a" ~bytes:40 1);
  ignore (Lru.add l ~key:"b" ~bytes:40 2);
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "find b" (Some 2) (Lru.find l "b");
  Alcotest.(check (option int)) "miss" None (Lru.find l "c");
  Alcotest.(check int) "bytes tracked" 80 (Lru.bytes l)

let t_lru_evicts_lru_end () =
  let l = Lru.create ~max_bytes:100 in
  ignore (Lru.add l ~key:"a" ~bytes:40 1);
  ignore (Lru.add l ~key:"b" ~bytes:40 2);
  (* touch "a" so "b" is the LRU entry when "c" overflows the bound *)
  ignore (Lru.find l "a");
  let evicted = Lru.add l ~key:"c" ~bytes:40 3 in
  Alcotest.(check int) "one eviction" 1 evicted;
  Alcotest.(check (option int)) "b evicted" None (Lru.find l "b");
  Alcotest.(check (option int)) "a kept (recently used)" (Some 1)
    (Lru.find l "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find l "c")

let t_lru_replace_and_bounds () =
  let l = Lru.create ~max_bytes:100 in
  ignore (Lru.add l ~key:"a" ~bytes:60 1);
  let ev = Lru.add l ~key:"a" ~bytes:30 2 in
  Alcotest.(check int) "replacement is not an eviction" 0 ev;
  Alcotest.(check (option int)) "replaced value" (Some 2) (Lru.find l "a");
  Alcotest.(check int) "bytes re-accounted" 30 (Lru.bytes l);
  (* an entry bigger than the whole cache is refused outright *)
  let ev = Lru.add l ~key:"huge" ~bytes:101 3 in
  Alcotest.(check int) "oversized refused, nothing evicted" 0 ev;
  Alcotest.(check (option int)) "oversized absent" None (Lru.find l "huge");
  (* max_bytes = 0 disables caching entirely *)
  let off = Lru.create ~max_bytes:0 in
  ignore (Lru.add off ~key:"x" ~bytes:0 1);
  Alcotest.(check (option int)) "disabled cache stores nothing" None
    (Lru.find off "x")

(* ---- Json ------------------------------------------------------------ *)

let t_json_values () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "object with scalars" true
    (ok "{\"a\": 1, \"b\": -2.5, \"c\": true, \"d\": null, \"e\": \"x\"}"
    = Json.Obj
        [ ("a", Json.Int 1); ("b", Json.Float (-2.5)); ("c", Json.Bool true);
          ("d", Json.Null); ("e", Json.Str "x") ]);
  Alcotest.(check bool) "nested arrays" true
    (ok "[1, [2, 3], {\"k\": []}]"
    = Json.Arr
        [ Json.Int 1; Json.Arr [ Json.Int 2; Json.Int 3 ];
          Json.Obj [ ("k", Json.Arr []) ] ]);
  Alcotest.(check bool) "string escapes" true
    (ok "\"a\\n\\\"b\\\"\\u0041\"" = Json.Str "a\n\"b\"A")

let t_json_errors () =
  let bad s =
    match Json.parse s with Ok _ -> Alcotest.failf "parsed %S" s | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\": }";
  bad "[1, 2,]";
  bad "tru";
  bad "1 2";
  bad "{\"a\": 1} trailing"

let t_json_fields () =
  let j =
    match Json.parse "{\"s\": \"x\", \"i\": 7, \"b\": false, \"n\": null}" with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "str present" true (Json.str_field "s" j = Ok (Some "x"));
  Alcotest.(check bool) "int present" true (Json.int_field "i" j = Ok (Some 7));
  Alcotest.(check bool) "bool present" true
    (Json.bool_field "b" j = Ok (Some false));
  Alcotest.(check bool) "null reads as absent" true
    (Json.int_field "n" j = Ok None);
  Alcotest.(check bool) "absent is None" true (Json.str_field "z" j = Ok None);
  Alcotest.(check bool) "mistyped is Error" true
    (match Json.int_field "s" j with Error _ -> true | Ok _ -> false)

(* ---- daemon helpers -------------------------------------------------- *)

let with_daemon ?(jobs = 2) ?(cache_bytes = 64 * 1024 * 1024) f =
  let path = Serve.temp_socket_path () in
  let cfg =
    { (Serve.default_config ~socket_path:path) with Serve.jobs; cache_bytes }
  in
  let srv = Serve.start cfg in
  Fun.protect
    ~finally:(fun () ->
      (try Serve.Client.shutdown path with _ -> ());
      Serve.wait srv;
      Foray_obs.Obs.set_enabled false;
      Foray_obs.Span.set_enabled false)
    (fun () -> f path)

let status j =
  match Json.member "status" j with Some (Json.Str s) -> s | _ -> "?"

let err_code j =
  match Json.member "error" j with
  | Some e -> (
      match Json.member "error" e with Some (Json.Str c) -> c | _ -> "?")
  | None -> "?"

let model j =
  match Json.member "model" j with Some (Json.Str m) -> m | _ -> ""

let cached j =
  match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false

let degraded j =
  match Json.member "degraded" j with Some (Json.Arr l) -> l | _ -> []

let degraded_budget_names j =
  List.filter_map
    (fun d ->
      match Json.member "budget" d with Some (Json.Str b) -> Some b | _ -> None)
    (degraded j)

(* ---- protocol and error taxonomy ------------------------------------- *)

let t_ping_and_shutdown () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let j = Serve.Client.rpc c [ ("op", "\"ping\""); ("id", "42") ] in
          Alcotest.(check string) "ping ok" "ok" (status j);
          Alcotest.(check bool) "id echoed" true
            (Json.member "id" j = Some (Json.Int 42))))

let t_bad_requests () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let resp line =
            match Json.parse (Serve.Client.request c line) with
            | Ok j -> j
            | Error e -> Alcotest.failf "response not JSON: %s" e
          in
          (* not JSON at all *)
          let j = resp "this is not json" in
          Alcotest.(check string) "garbage -> error" "error" (status j);
          Alcotest.(check string) "garbage -> E_BAD_REQUEST" "E_BAD_REQUEST"
            (err_code j);
          (* valid JSON, no op *)
          let j = resp "{\"id\": 1}" in
          Alcotest.(check string) "missing op" "E_BAD_REQUEST" (err_code j);
          (* unknown op *)
          let j = resp "{\"op\": \"frobnicate\"}" in
          Alcotest.(check string) "unknown op" "E_BAD_REQUEST" (err_code j);
          (* mistyped field *)
          let j = resp "{\"op\": \"analyze\", \"program\": \"adpcm\", \"max_steps\": \"lots\"}" in
          Alcotest.(check string) "mistyped field" "E_BAD_REQUEST" (err_code j);
          (* analyze with no target *)
          let j = resp "{\"op\": \"analyze\"}" in
          Alcotest.(check string) "no target" "E_BAD_REQUEST" (err_code j);
          (* unknown program name -> the pipeline's own taxonomy *)
          let j = resp "{\"op\": \"analyze\", \"program\": \"nonesuch\"}" in
          Alcotest.(check string) "unknown program" "E_NOT_FOUND" (err_code j);
          (* inline source that cannot parse *)
          let j = resp "{\"op\": \"analyze\", \"source\": \"int main( {\"}" in
          Alcotest.(check string) "bad source" "E_PARSE" (err_code j);
          (* the daemon survived all of the above *)
          let j = resp "{\"op\": \"ping\"}" in
          Alcotest.(check string) "still alive" "ok" (status j)))

(* ---- model cache ------------------------------------------------------ *)

let t_cache_hit_identical_model () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let analyze () =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"") ]
          in
          let cold = analyze () in
          Alcotest.(check string) "cold ok" "ok" (status cold);
          Alcotest.(check bool) "cold is a miss" false (cached cold);
          Alcotest.(check bool) "cold has a model" true (model cold <> "");
          let warm = analyze () in
          Alcotest.(check bool) "warm is a hit" true (cached warm);
          Alcotest.(check string) "cached model byte-identical" (model cold)
            (model warm);
          (* extract shares the cache entry and the exact model bytes *)
          let ex =
            Serve.Client.rpc c
              [ ("op", "\"extract\""); ("program", "\"fig4a\"") ]
          in
          Alcotest.(check bool) "extract hits the same entry" true (cached ex);
          Alcotest.(check string) "extract model identical" (model cold)
            (model ex);
          (* cache-bypassed responses still carry the same model *)
          let nc =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"");
                ("cache", "false") ]
          in
          Alcotest.(check bool) "bypass is uncached" false (cached nc);
          Alcotest.(check string) "bypass model identical" (model cold)
            (model nc);
          (* different thresholds are a different key, not a stale hit *)
          let other =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"");
                ("nexec", "1"); ("nloc", "1") ]
          in
          Alcotest.(check bool) "different config misses" false (cached other)))

let t_degraded_never_cached () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let req () =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"adpcm\"");
                ("max_steps", "40") ]
          in
          let a = req () in
          Alcotest.(check string) "budget stop still ok" "ok" (status a);
          Alcotest.(check bool) "degraded recorded" true (degraded a <> []);
          Alcotest.(check (list string)) "budget named"
            [ "max_steps" ]
            (degraded_budget_names a);
          let b = req () in
          Alcotest.(check bool) "degraded result was not cached" false
            (cached b)))

(* ---- budgets and strictness over the wire ----------------------------- *)

let t_deadline_admission_over_wire () =
  (* deadline_ms = 0 must degrade (or error under strict) even though the
     programs here are far shorter than the periodic check interval. *)
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let j =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"");
                ("deadline_ms", "0") ]
          in
          Alcotest.(check string) "expired deadline degrades" "ok" (status j);
          Alcotest.(check (list string)) "deadline named"
            [ "deadline_ms" ]
            (degraded_budget_names j);
          let j =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"");
                ("deadline_ms", "0"); ("strict", "true") ]
          in
          Alcotest.(check string) "strict turns it into E_BUDGET" "E_BUDGET"
            (err_code j)))

(* ---- concurrency and isolation ---------------------------------------- *)

let t_concurrent_mixed_workload () =
  (* 6 client domains, each its own connection, each issuing a mixed
     analyze/extract stream over three programs. Every response must be
     well-formed, successful, and carry the same model bytes per
     (program) as every other client saw. *)
  with_daemon ~jobs:2 (fun path ->
      let programs = [| "adpcm"; "fig4a"; "fig7a" |] in
      let per_client =
        Parallel.map ~jobs:6
          (fun ci ->
            let c = Serve.Client.connect path in
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () ->
                List.init 6 (fun i ->
                    let prog = programs.((ci + i) mod 3) in
                    let op = if i mod 2 = 0 then "analyze" else "extract" in
                    let j =
                      Serve.Client.rpc c
                        [ ("op", Printf.sprintf "\"%s\"" op);
                          ("program", Printf.sprintf "\"%s\"" prog) ]
                    in
                    Alcotest.(check string)
                      (Printf.sprintf "client %d req %d ok" ci i)
                      "ok" (status j);
                    Alcotest.(check bool)
                      (Printf.sprintf "client %d req %d has model" ci i)
                      true
                      (model j <> "");
                    Alcotest.(check bool)
                      (Printf.sprintf "client %d req %d not degraded" ci i)
                      true
                      (degraded j = []);
                    (prog, model j))))
          (List.init 6 Fun.id)
      in
      (* cross-client agreement: one model per program, regardless of who
         asked, in what order, and whether the cache answered *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (prog, m) ->
          match Hashtbl.find_opt tbl prog with
          | None -> Hashtbl.add tbl prog m
          | Some m' ->
              Alcotest.(check string)
                (Printf.sprintf "every client sees one %s model" prog)
                m' m)
        (List.concat per_client))

let t_client_failures_isolated () =
  (* Three concurrent clients: one exhausts budgets (strict, so it gets
     E_BUDGET errors), one analyzes a corrupt trace file, one runs clean
     requests. The failing clients must never poison the clean one, and
     the daemon must still answer afterwards. *)
  with_daemon ~jobs:2 (fun path ->
      let corrupt = Filename.temp_file "foray_serve_corrupt" ".trace" in
      let oc = open_out_bin corrupt in
      output_string oc "FORAYTR1\n\xde\xad\xbe\xef not a real record stream";
      close_out oc;
      Fun.protect
        ~finally:(fun () -> try Sys.remove corrupt with Sys_error _ -> ())
        (fun () ->
          let rounds = 4 in
          let outcomes =
            Parallel.map ~jobs:3
              (fun role ->
                let c = Serve.Client.connect path in
                Fun.protect
                  ~finally:(fun () -> Serve.Client.close c)
                  (fun () ->
                    List.init rounds (fun _ ->
                        match role with
                        | 0 ->
                            (* budget exhaustion, strict: a typed error *)
                            let j =
                              Serve.Client.rpc c
                                [ ("op", "\"analyze\"");
                                  ("program", "\"adpcm\"");
                                  ("max_steps", "40"); ("strict", "true");
                                  ("cache", "false") ]
                            in
                            Alcotest.(check string) "strict budget -> E_BUDGET"
                              "E_BUDGET" (err_code j);
                            `Failed
                        | 1 ->
                            (* corrupt trace: error or salvaged-degraded,
                               but always a well-formed response *)
                            let j =
                              Serve.Client.rpc c
                                [ ("op", "\"analyze\"");
                                  ( "trace",
                                    Printf.sprintf "\"%s\""
                                      (Foray_core.Error.json_escape corrupt) );
                                  ("strict", "true"); ("cache", "false") ]
                            in
                            Alcotest.(check bool)
                              "corrupt trace -> typed error or degraded ok"
                              true
                              (err_code j = "E_TRACE_CORRUPT"
                              || (status j = "ok" && degraded j <> []));
                            `Failed
                        | _ ->
                            (* the clean client must stay clean *)
                            let j =
                              Serve.Client.rpc c
                                [ ("op", "\"analyze\"");
                                  ("program", "\"fig4a\"") ]
                            in
                            Alcotest.(check string) "clean client ok" "ok"
                              (status j);
                            Alcotest.(check bool) "clean client not degraded"
                              true
                              (degraded j = []);
                            `Clean)))
              [ 0; 1; 2 ]
          in
          Alcotest.(check int) "all rounds ran" (3 * rounds)
            (List.length (List.concat outcomes));
          (* daemon is still healthy after the mixed failure traffic *)
          let c = Serve.Client.connect path in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              let j =
                Serve.Client.rpc c
                  [ ("op", "\"analyze\""); ("program", "\"fig4a\"") ]
              in
              Alcotest.(check string) "daemon alive and correct" "ok"
                (status j);
              Alcotest.(check bool) "and serving from cache" true (cached j))))

(* ---- request telemetry ------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle and hs = String.length hay in
  let rec go i = i + n <= hs && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let jfloat = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let t_rid_and_ms () =
  (* every response carries a request id and its latency *)
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let rid j =
            match Json.member "rid" j with
            | Some (Json.Int r) -> r
            | _ -> Alcotest.fail "rid missing"
          in
          let a = Serve.Client.rpc c [ ("op", "\"ping\"") ] in
          let b = Serve.Client.rpc c [ ("op", "\"ping\"") ] in
          Alcotest.(check bool) "rids advance" true (rid b > rid a);
          match jfloat (Json.member "ms" a) with
          | Some ms -> Alcotest.(check bool) "ms non-negative" true (ms >= 0.0)
          | None -> Alcotest.fail "ms missing"))

let t_metrics_text_op () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let j =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"") ]
          in
          Alcotest.(check string) "analyze ok" "ok" (status j);
          let m = Serve.Client.rpc c [ ("op", "\"metrics_text\"") ] in
          Alcotest.(check string) "metrics_text ok" "ok" (status m);
          let text =
            match Json.member "text" m with
            | Some (Json.Str t) -> t
            | _ -> Alcotest.fail "text field missing"
          in
          Alcotest.(check bool) "counter family" true
            (contains text "# TYPE serve_requests counter");
          Alcotest.(check bool) "labeled series" true
            (contains text "serve_requests_total{op=\"analyze\"}");
          Alcotest.(check bool) "latency histogram" true
            (contains text "serve_request_ms_bucket{le=\"+Inf\"}");
          Alcotest.(check bool) "window gauges spliced" true
            (contains text "foray_window_rps{window=\"10s\"}");
          Alcotest.(check bool) "runtime gauges sampled" true
            (contains text "runtime_gc_major_words");
          Alcotest.(check bool) "terminated" true
            (String.ends_with ~suffix:"# EOF\n" text)))

let t_inline_trace_tree () =
  (* "trace": true returns the request's span tree; the synthetic root's
     duration is the same latency the "ms" field reports. *)
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let j =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"");
                ("cache", "false"); ("trace", "true") ]
          in
          Alcotest.(check string) "traced analyze ok" "ok" (status j);
          let tr =
            match Json.member "trace" j with
            | Some t -> t
            | None -> Alcotest.fail "trace field missing"
          in
          (match Json.member "name" tr with
          | Some (Json.Str "request") -> ()
          | _ -> Alcotest.fail "root is not the synthetic request node");
          let ms =
            match jfloat (Json.member "ms" j) with
            | Some v -> v
            | None -> Alcotest.fail "ms missing"
          in
          let dur =
            match jfloat (Json.member "dur_us" tr) with
            | Some v -> v
            | None -> Alcotest.fail "root dur_us missing"
          in
          let want = ms *. 1000.0 in
          Alcotest.(check bool) "root duration equals response latency" true
            (Float.abs (dur -. want) <= Float.max 1000.0 (0.05 *. want));
          (match Json.member "children" tr with
          | Some (Json.Arr (_ :: _)) -> ()
          | _ -> Alcotest.fail "trace tree has no children");
          (* untraced requests carry no trace field *)
          let plain =
            Serve.Client.rpc c [ ("op", "\"analyze\""); ("program", "\"fig4a\"") ]
          in
          Alcotest.(check bool) "no trace unless asked" true
            (Json.member "trace" plain = None)))

let t_window_in_metrics () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let analyze () =
            ignore
              (Serve.Client.rpc c
                 [ ("op", "\"analyze\""); ("program", "\"fig4a\"") ])
          in
          analyze ();
          analyze ();
          analyze ();
          let m = Serve.Client.rpc c [ ("op", "\"metrics\"") ] in
          let win10 =
            match Json.member "window" m with
            | Some w -> (
                match Json.member "10s" w with
                | Some s -> s
                | None -> Alcotest.fail "10s window missing")
            | None -> Alcotest.fail "window object missing"
          in
          (match Json.member "requests" win10 with
          | Some (Json.Int n) ->
              Alcotest.(check bool) "window counted the soak" true (n >= 3)
          | _ -> Alcotest.fail "window requests missing");
          (match jfloat (Json.member "rps" win10) with
          | Some r -> Alcotest.(check bool) "rps positive" true (r > 0.0)
          | None -> Alcotest.fail "window rps missing");
          (match jfloat (Json.member "hit_rate" win10) with
          | Some hr ->
              (* 1 miss then 2 hits of the same key *)
              Alcotest.(check bool) "hit rate reflects cache" true (hr > 0.0)
          | None -> Alcotest.fail "window hit_rate missing");
          match Json.member "slow" m with
          | Some (Json.Arr _) -> ()
          | _ -> Alcotest.fail "slow array missing"))

let t_access_log_and_slow () =
  (* with an access log and slow_ms = 0, every request appends one JSONL
     line and qualifies as slow, so lines carry the span breakdown *)
  let path = Serve.temp_socket_path () in
  let log = Filename.temp_file "foray_test_access" ".jsonl" in
  let cfg =
    {
      (Serve.default_config ~socket_path:path) with
      Serve.jobs = 1;
      access_log = Some log;
      slow_ms = Some 0;
    }
  in
  let srv = Serve.start cfg in
  Fun.protect
    ~finally:(fun () ->
      (try Serve.Client.shutdown path with _ -> ());
      Serve.wait srv;
      Foray_obs.Obs.set_enabled false;
      Foray_obs.Span.set_enabled false;
      try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          ignore (Serve.Client.rpc c [ ("op", "\"ping\"") ]);
          let j =
            Serve.Client.rpc c
              [ ("op", "\"analyze\""); ("program", "\"fig4a\"");
                ("cache", "false") ]
          in
          Alcotest.(check string) "analyze ok" "ok" (status j));
      (* the log is flushed per line; read it back without shutdown *)
      let ic = open_in log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check bool) "one line per request" true
        (List.length lines >= 2);
      List.iter
        (fun line ->
          match Json.parse line with
          | Ok entry ->
              Alcotest.(check bool) "line has rid" true
                (Json.member "rid" entry <> None);
              Alcotest.(check bool) "line has latency" true
                (jfloat (Json.member "ms" entry) <> None);
              Alcotest.(check bool) "line flagged slow" true
                (Json.member "slow" entry = Some (Json.Bool true))
          | Error e -> Alcotest.failf "access-log line not JSON: %s" e)
        lines;
      (* the analyze line carries its span breakdown and cache outcome *)
      Alcotest.(check bool) "slow line has spans" true
        (List.exists (fun l -> contains l "\"spans\"") lines);
      Alcotest.(check bool) "analyze line logged its op" true
        (List.exists (fun l -> contains l "\"op\": \"analyze\"") lines))

(* ---- the spm op ------------------------------------------------------- *)

let t_spm_op () =
  with_daemon (fun path ->
      let c = Serve.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let resp line =
            match Json.parse (Serve.Client.request c line) with
            | Ok j -> j
            | Error e -> Alcotest.failf "response not JSON: %s" e
          in
          let results j =
            match Json.member "results" j with
            | Some (Json.Arr l) -> l
            | _ -> Alcotest.fail "spm response without results array"
          in
          (* a single-capacity optimal solve *)
          let j =
            resp "{\"op\": \"spm\", \"program\": \"fig4a\", \"spm_bytes\": 512}"
          in
          Alcotest.(check string) "spm ok" "ok" (status j);
          Alcotest.(check bool) "one result for one size" true
            (List.length (results j) = 1);
          let digest =
            match Json.member "digest" j with
            | Some (Json.Str d) -> d
            | _ -> Alcotest.fail "spm response without digest"
          in
          (* stochastic sweep over explicit sizes, then a cached repeat *)
          let stoch =
            "{\"op\": \"spm\", \"program\": \"fig4a\", \"sizes\": [256, \
             1024], \"strategy\": \"stochastic\", \"seed\": 7, \
             \"budget_proposals\": 4000}"
          in
          let cold = resp stoch in
          Alcotest.(check string) "stochastic ok" "ok" (status cold);
          Alcotest.(check bool) "stochastic not cached cold" false
            (cached cold);
          Alcotest.(check bool) "one result per size" true
            (List.length (results cold) = 2);
          List.iter
            (fun r ->
              Alcotest.(check bool) "stochastic result carries search stats"
                true
                (Json.member "search" r <> None))
            (results cold);
          let warm = resp stoch in
          Alcotest.(check bool) "repeat served from cache" true (cached warm);
          Alcotest.(check bool) "cached body identical" true
            (results cold = results warm);
          (* a different spm configuration is a different cache key *)
          let other =
            resp
              "{\"op\": \"spm\", \"program\": \"fig4a\", \"sizes\": [256, \
               1024], \"strategy\": \"optimal\"}"
          in
          Alcotest.(check bool) "other strategy not cached" false
            (cached other);
          (* readdress the analyzed model by digest alone *)
          let by_digest =
            resp
              (Printf.sprintf
                 "{\"op\": \"spm\", \"digest\": \"%s\", \"spm_bytes\": 512}"
                 digest)
          in
          Alcotest.(check string) "digest readdress ok" "ok" (status by_digest);
          (* failure taxonomy: all on the closed error set *)
          let j = resp "{\"op\": \"spm\", \"spm_bytes\": 512}" in
          Alcotest.(check string) "no target" "E_BAD_REQUEST" (err_code j);
          let j =
            resp
              "{\"op\": \"spm\", \"program\": \"fig4a\", \"strategy\": \
               \"lucky\"}"
          in
          Alcotest.(check string) "unknown strategy" "E_BAD_REQUEST"
            (err_code j);
          let j =
            resp "{\"op\": \"spm\", \"program\": \"fig4a\", \"sizes\": [0]}"
          in
          Alcotest.(check string) "non-positive size" "E_BAD_REQUEST"
            (err_code j);
          let j =
            resp
              "{\"op\": \"spm\", \"digest\": \"deadbeef\", \"spm_bytes\": 512}"
          in
          Alcotest.(check string) "unknown digest" "E_NOT_FOUND" (err_code j);
          (* the daemon survived all of the above *)
          let j = resp "{\"op\": \"ping\"}" in
          Alcotest.(check string) "still alive" "ok" (status j)))

let t_shutdown_removes_socket () =
  let path = Serve.temp_socket_path () in
  let cfg = { (Serve.default_config ~socket_path:path) with Serve.jobs = 1 } in
  let srv = Serve.start cfg in
  Serve.Client.shutdown path;
  Serve.wait srv;
  Foray_obs.Obs.set_enabled false;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let tests =
  [
    Alcotest.test_case "lru basics" `Quick t_lru_basics;
    Alcotest.test_case "lru evicts LRU end" `Quick t_lru_evicts_lru_end;
    Alcotest.test_case "lru replace and bounds" `Quick t_lru_replace_and_bounds;
    Alcotest.test_case "json values" `Quick t_json_values;
    Alcotest.test_case "json errors" `Quick t_json_errors;
    Alcotest.test_case "json field accessors" `Quick t_json_fields;
    Alcotest.test_case "ping and id echo" `Quick t_ping_and_shutdown;
    Alcotest.test_case "bad requests are E_BAD_REQUEST" `Quick t_bad_requests;
    Alcotest.test_case "cache hit returns identical model" `Quick
      t_cache_hit_identical_model;
    Alcotest.test_case "degraded results never cached" `Quick
      t_degraded_never_cached;
    Alcotest.test_case "deadline admission over the wire" `Quick
      t_deadline_admission_over_wire;
    Alcotest.test_case "concurrent mixed workload" `Slow
      t_concurrent_mixed_workload;
    Alcotest.test_case "client failures isolated" `Slow
      t_client_failures_isolated;
    Alcotest.test_case "rid and ms on every response" `Quick t_rid_and_ms;
    Alcotest.test_case "metrics_text exposition" `Quick t_metrics_text_op;
    Alcotest.test_case "inline trace tree" `Quick t_inline_trace_tree;
    Alcotest.test_case "window stats in metrics op" `Quick t_window_in_metrics;
    Alcotest.test_case "access log and slow breakdown" `Quick
      t_access_log_and_slow;
    Alcotest.test_case "spm op over the wire" `Quick t_spm_op;
    Alcotest.test_case "shutdown removes socket" `Quick
      t_shutdown_removes_socket;
  ]
