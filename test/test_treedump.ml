(* Loop-tree rendering and memory-comparison smoke tests. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let t_render_fig9 () =
  let r = Tutil.run_source Foray_suite.Figures.fig9 in
  let s =
    Foray_core.Treedump.render ~loop_kinds:r.loop_kinds r.tree
  in
  Alcotest.(check bool) "mentions loop count" true
    (contains ~sub:"loop nodes" s);
  Alcotest.(check bool) "loop kinds shown" true (contains ~sub:"for loop" s);
  Alcotest.(check bool) "trips shown" true (contains ~sub:"trips 10..10" s);
  (* foo's loop appears twice (two contexts) *)
  let count_occurrences sub s =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length s then acc
      else if String.sub s i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check bool) "both contexts rendered" true
    (count_occurrences "entries, trips 10..10" s >= 1)

let t_render_hides_scalars () =
  let r = Tutil.run_source Foray_suite.Figures.fig4a in
  let quiet = Foray_core.Treedump.render r.tree in
  let full = Foray_core.Treedump.render ~show_all:true r.tree in
  Alcotest.(check bool) "full view is larger" true
    (String.length full > String.length quiet)

let t_memcompare_consistency () =
  let b = Option.get (Foray_suite.Suite.find "adpcm") in
  let r = Foray_report.Memcompare.run b ~capacity:1024 in
  Alcotest.(check bool) "accesses counted" true (r.accesses > 0);
  Alcotest.(check bool) "hit rate in range" true
    (r.cache_hit_rate >= 0.0 && r.cache_hit_rate <= 1.0);
  Alcotest.(check bool) "cache beats all-main on reuse" true
    (r.cache_energy < r.main_energy);
  Alcotest.(check bool) "SPM never exceeds all-main" true
    (r.spm_energy <= r.main_energy +. 1e-6);
  let table = Foray_report.Memcompare.table ~capacity:1024 [ r ] in
  Alcotest.(check bool) "table mentions the benchmark" true
    (contains ~sub:"adpcm" table)

let tests =
  [
    Alcotest.test_case "render figure 9 tree" `Quick t_render_fig9;
    Alcotest.test_case "scalar hiding" `Quick t_render_hides_scalars;
    Alcotest.test_case "memory comparison consistency" `Quick
      t_memcompare_consistency;
  ]
