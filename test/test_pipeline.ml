(* End-to-end pipeline tests, including the paper's worked examples. *)

open Foray_core
module Figures = Foray_suite.Figures

let th nexec nloc = Filter.{ nexec; nloc }

let t_figure4_model () =
  (* the headline worked example: while+for pointer walk becomes a
     2x3 nest with coefficients 1 (inner) and 103 (outer) *)
  let r = Tutil.run_source ~thresholds:(th 2 2) Figures.fig4a in
  match Model.all_refs r.model with
  | [ (chain, mr) ] ->
      Alcotest.(check (list int)) "trips outer-in" [ 2; 3 ]
        (List.map (fun (l : Model.mloop) -> l.trip) chain);
      Alcotest.(check (list string)) "loop kinds" [ "while"; "for" ]
        (List.map
           (fun (l : Model.mloop) -> Option.value l.kind ~default:"?")
           chain);
      Alcotest.(check (list int)) "coefficients" [ 1; 103 ]
        (List.map fst mr.terms);
      Alcotest.(check bool) "full affine" false mr.partial;
      Alcotest.(check int) "6 executions" 6 mr.execs;
      Alcotest.(check int) "6 locations" 6 mr.locations
  | l -> Alcotest.failf "expected exactly one model ref, got %d" (List.length l)

let t_figure1_models () =
  (* Figure 1 -> Figure 2: two nests; 3x64 with strides 4/256, and a
     16-iteration for under a single-trip while with stride 4 *)
  let r = Tutil.run_source ~thresholds:(th 10 10) Figures.fig1 in
  let refs = Model.all_refs r.model in
  Alcotest.(check int) "two references" 2 (List.length refs);
  let with_coeffs want =
    List.exists (fun (_, (mr : Model.mref)) -> List.map fst mr.terms = want) refs
  in
  Alcotest.(check bool) "4*inner + 256*outer nest" true (with_coeffs [ 4; 256 ]);
  Alcotest.(check bool) "stride-4 result walk" true
    (with_coeffs [ 4 ] || with_coeffs [ 4; 64 ])

let t_figure7b_partial () =
  let r = Tutil.run_source ~thresholds:(th 10 5) Figures.fig7b in
  let partials =
    List.filter (fun (_, (mr : Model.mref)) -> mr.partial)
      (Model.all_refs r.model)
  in
  Alcotest.(check bool) "a partial reference exists" true (partials <> []);
  let _, mr = List.hd partials in
  Alcotest.(check int) "covers foo's two loops" 2 mr.m;
  Alcotest.(check (list int)) "coefficients 4*j + 40*i" [ 4; 40 ]
    (List.map fst mr.terms)

let t_figure9_hints () =
  let r = Tutil.run_source ~thresholds:(th 5 5) Figures.fig9 in
  match Pipeline.hints r with
  | [ h ] ->
      Alcotest.(check (option string)) "foo flagged" (Some "foo") h.func;
      Alcotest.(check int) "two contexts" 2 (List.length h.contexts);
      Alcotest.(check bool) "different patterns" true h.distinct_patterns
  | l -> Alcotest.failf "expected one hint, got %d" (List.length l)

let t_online_equals_offline () =
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let prog = Minic.Parser.program b.source in
      let online = Tutil.run prog in
      let offline, trace = Tutil.run_offline prog in
      Alcotest.(check string)
        (b.name ^ " same model")
        (Model.to_c online.model)
        (Model.to_c offline.model);
      Alcotest.(check bool) (b.name ^ " trace nonempty") true (trace <> []))
    [ Option.get (Foray_suite.Suite.find "adpcm");
      Option.get (Foray_suite.Suite.find "fft") ]

let t_trace_serialization_replay () =
  (* serialize the trace to text, parse it back, re-analyze: same model *)
  let prog = Minic.Parser.program Figures.fig4a in
  let r1, trace = Tutil.run_offline ~thresholds:(th 2 2) prog in
  let text = Foray_trace.Event.to_string trace in
  let replayed =
    match Foray_trace.Event.of_string text with
    | Ok events -> events
    | Error msg -> Alcotest.failf "of_string rejected its own output: %s" msg
  in
  let tree = Looptree.create () in
  List.iter (Looptree.sink tree) replayed;
  let model =
    Model.of_tree ~thresholds:(th 2 2) ~loop_kinds:r1.loop_kinds tree
  in
  Alcotest.(check string) "same model after text round-trip"
    (Model.to_c r1.model) (Model.to_c model)

let t_thresholds_monotone () =
  (* stricter thresholds never keep more references *)
  let prog = Minic.Parser.program (Option.get (Foray_suite.Suite.find "gsm")).source in
  let loose = Tutil.run ~thresholds:(th 2 2) prog in
  let strict = Tutil.run ~thresholds:(th 50 50) prog in
  Alcotest.(check bool) "monotone" true
    (Model.n_refs strict.model <= Model.n_refs loose.model);
  Alcotest.(check bool) "loose nonempty" true (Model.n_refs loose.model > 0)

let t_model_sites_subset () =
  let r = Tutil.run_source (Option.get (Foray_suite.Suite.find "susan")).source in
  let traced =
    List.map (fun (s : Foray_trace.Tstats.site_info) -> s.site)
      (Foray_trace.Tstats.sites r.tstats)
  in
  List.iter
    (fun s ->
      if not (List.mem s traced) then
        Alcotest.failf "model site %x never traced" s)
    r.model.sites

let t_model_emits_parseable_minic () =
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let r = Tutil.run_source b.source in
      let src = Model.to_c r.model in
      let prog = Minic.Parser.program src in
      Minic.Sema.check_exn prog)
    Foray_suite.Suite.all

let t_loop_functions () =
  let prog =
    Minic.Parser.program
      "int f() { int i; for (i = 0; i < 2; i++) { } return 0; } int main() { int j; while (j < 1) { j++; } return f(); }"
  in
  let funcs = Pipeline.loop_functions prog in
  Alcotest.(check (list string)) "owners in order" [ "f"; "main" ]
    (List.map snd funcs)

let t_loop_functions_in_switch () =
  (* regression: loops nested in switch arms used to be invisible to
     loop_functions, so their hints reported no owning function *)
  let prog =
    Minic.Parser.program
      "int A[64];\n\
       int helper(int v) {\n\
      \  int s; s = 0;\n\
      \  switch (v) {\n\
      \    case 3: for (int i = 0; i < 32; i++) { s = s + A[i]; } break;\n\
      \    default: while (s < 2) { s++; }\n\
      \  }\n\
      \  return s;\n\
       }\n\
       int main() { return helper(3); }"
  in
  let funcs = Pipeline.loop_functions prog in
  Alcotest.(check int) "both switch-arm loops found" 2 (List.length funcs);
  List.iter
    (fun (_, owner) ->
      Alcotest.(check string) "owned by helper" "helper" owner)
    funcs

let t_sema_failure_surfaces () =
  match Pipeline.run_source "int main() { return x; }" with
  | Ok _ -> Alcotest.fail "expected sema failure"
  | Error (Error.Sema { msg }) ->
      Alcotest.(check bool) "mentions the undeclared variable" true
        (String.length msg > 0)
  | Error e ->
      Alcotest.failf "expected E_SEMA, got %s" (Error.to_string e)

let t_parse_failure_typed () =
  match Pipeline.run_source "int main( {" with
  | Ok _ -> Alcotest.fail "expected parse failure"
  | Error (Error.Parse _ as e) ->
      Alcotest.(check string) "code" "E_PARSE" (Error.code e);
      Alcotest.(check int) "exit code" 10 (Error.exit_code e)
  | Error e ->
      Alcotest.failf "expected E_PARSE, got %s" (Error.to_string e)

let t_runtime_failure_typed () =
  match Pipeline.run_source "int main() { int a; a = 1 / 0; return a; }" with
  | Ok _ -> Alcotest.fail "expected runtime failure"
  | Error (Error.Runtime { loc; step; _ } as e) ->
      Alcotest.(check string) "stage" "simulate" loc;
      Alcotest.(check bool) "step recorded" true (step >= 0);
      Alcotest.(check int) "exit code" 12 (Error.exit_code e)
  | Error e ->
      Alcotest.failf "expected E_RUNTIME, got %s" (Error.to_string e)

let t_budget_degrades () =
  (* A tight step budget must stop the simulation cleanly and surface a
     Degraded_budget record alongside a usable (prefix) model. *)
  let prog = Minic.Parser.program Figures.fig4a in
  let config = { Minic_sim.Interp.default_config with max_steps = 40 } in
  let o = Tutil.run_outcome ~config ~thresholds:(th 2 2) prog in
  match o.degraded with
  | [ Pipeline.Degraded_budget { budget; limit; spent; _ } ] ->
      Alcotest.(check string) "budget name" "max_steps" budget;
      Alcotest.(check int) "limit" 40 limit;
      Alcotest.(check bool) "spent at limit" true (spent >= limit)
  | _ -> Alcotest.fail "expected exactly one Degraded_budget record"

let t_event_budget_degrades () =
  let prog = Minic.Parser.program Figures.fig4a in
  let config =
    { Minic_sim.Interp.default_config with max_trace_events = Some 10 }
  in
  let o = Tutil.run_outcome ~config ~thresholds:(th 2 2) prog in
  match o.degraded with
  | [ Pipeline.Degraded_budget { budget; events_seen; _ } ] ->
      Alcotest.(check string) "budget name" "max_trace_events" budget;
      Alcotest.(check bool) "events bounded" true (events_seen <= 10)
  | _ -> Alcotest.fail "expected exactly one Degraded_budget record"

let t_deadline_zero_degrades () =
  (* Regression: an already-expired wall-clock deadline on a short program
     must surface as a Degraded_budget stop at admission, never as a clean
     result (the periodic check alone only fires from step 4096 on). *)
  let prog = Minic.Parser.program Figures.fig4a in
  let config =
    { Minic_sim.Interp.default_config with deadline_ms = Some 0 }
  in
  let o = Tutil.run_outcome ~config ~thresholds:(th 2 2) prog in
  match o.degraded with
  | [ Pipeline.Degraded_budget { budget; limit; spent; events_seen } ] ->
      Alcotest.(check string) "budget name" "deadline_ms" budget;
      Alcotest.(check int) "limit" 0 limit;
      Alcotest.(check bool) "spent non-negative" true (spent >= 0);
      Alcotest.(check int) "no events analyzed" 0 events_seen
  | [] -> Alcotest.fail "clean result under an expired deadline"
  | _ -> Alcotest.fail "expected exactly one Degraded_budget record"

let t_sema_error_is_typed () =
  match Pipeline.run_source "int main() { return x; }" with
  | Error (Error.Sema _) -> ()
  | Ok _ -> Alcotest.fail "expected a Sema error"
  | Error e -> Alcotest.failf "wrong error class: %s" (Error.to_string e)

let tests =
  [
    Alcotest.test_case "figure 4 model" `Quick t_figure4_model;
    Alcotest.test_case "figure 1 -> figure 2 models" `Quick t_figure1_models;
    Alcotest.test_case "figure 7b partial affine" `Quick t_figure7b_partial;
    Alcotest.test_case "figure 9 hints" `Quick t_figure9_hints;
    Alcotest.test_case "online equals offline" `Slow t_online_equals_offline;
    Alcotest.test_case "trace text replay" `Quick t_trace_serialization_replay;
    Alcotest.test_case "thresholds monotone" `Slow t_thresholds_monotone;
    Alcotest.test_case "model sites are traced sites" `Slow
      t_model_sites_subset;
    Alcotest.test_case "models emit parseable MiniC" `Slow
      t_model_emits_parseable_minic;
    Alcotest.test_case "loop functions" `Quick t_loop_functions;
    Alcotest.test_case "loop functions inside switch" `Quick
      t_loop_functions_in_switch;
    Alcotest.test_case "sema failure surfaces" `Quick t_sema_failure_surfaces;
    Alcotest.test_case "parse failure typed" `Quick t_parse_failure_typed;
    Alcotest.test_case "runtime failure typed" `Quick t_runtime_failure_typed;
    Alcotest.test_case "step budget degrades" `Quick t_budget_degrades;
    Alcotest.test_case "event budget degrades" `Quick t_event_budget_degrades;
    Alcotest.test_case "expired deadline degrades at admission" `Quick
      t_deadline_zero_degrades;
    Alcotest.test_case "sema error is typed" `Quick t_sema_error_is_typed;
  ]
