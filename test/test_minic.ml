(* Lexer, parser, printer round-trip and sema tests for MiniC. *)

open Minic

let tok_kinds src =
  List.map
    (fun (t : Lexer.spanned) ->
      match t.tok with
      | Lexer.INT_LIT n -> Printf.sprintf "I%d" n
      | Lexer.IDENT s -> "id:" ^ s
      | Lexer.KW s -> "kw:" ^ s
      | Lexer.PUNCT s -> s
      | Lexer.EOF -> "$")
    (Lexer.tokenize src)

let t_lexer_basic () =
  Alcotest.(check (list string))
    "tokens"
    [ "kw:int"; "id:x"; "="; "I42"; ";"; "$" ]
    (tok_kinds "int x = 42;")

let t_lexer_hex_char () =
  Alcotest.(check (list string)) "hex" [ "I255"; "$" ] (tok_kinds "0xFF");
  Alcotest.(check (list string)) "char" [ "I65"; "$" ] (tok_kinds "'A'");
  Alcotest.(check (list string)) "escape" [ "I10"; "$" ] (tok_kinds "'\\n'")

let t_lexer_comments () =
  Alcotest.(check (list string))
    "comments skipped" [ "I1"; "I2"; "$" ]
    (tok_kinds "1 // line\n/* block\nmore */ 2")

let t_lexer_longest_match () =
  Alcotest.(check (list string))
    "operators" [ "id:a"; "<<="; "I1"; ";"; "id:b"; "++"; ";"; "$" ]
    (tok_kinds "a <<= 1; b++;")

let t_lexer_errors () =
  (try
     ignore (Lexer.tokenize "int @ x");
     Alcotest.fail "expected lexer error"
   with Lexer.Error (_, 1) -> ());
  try
    ignore (Lexer.tokenize "/* unterminated");
    Alcotest.fail "expected lexer error"
  with Lexer.Error (_, _) -> ()

(* --- parser ---------------------------------------------------------- *)

let parse_expr_str s = Pretty.expr (Parser.expr s)

let t_precedence () =
  Alcotest.(check string) "mul binds tighter" "1 + 2 * 3"
    (parse_expr_str "1 + 2 * 3");
  Alcotest.(check string) "parens preserved" "(1 + 2) * 3"
    (parse_expr_str "(1 + 2) * 3");
  (* add binds tighter than shift in C, so the parens are redundant and
     the printer may drop them *)
  Alcotest.(check string) "shift vs add" "1 << 2 + 3"
    (parse_expr_str "1 << (2 + 3)")

let t_assoc () =
  (* left associativity: a - b - c = (a - b) - c *)
  let e = Parser.expr "a - b - c" in
  match e.Ast.e with
  | Ast.Bin (Ast.Sub, { e = Ast.Bin (Ast.Sub, _, _); _ }, { e = Ast.Var "c"; _ })
    ->
      ()
  | _ -> Alcotest.fail "wrong associativity"

let t_assign_right_assoc () =
  let e = Parser.expr "a = b = 1" in
  match e.Ast.e with
  | Ast.Assign ({ e = Ast.Var "a"; _ }, { e = Ast.Assign _; _ }) -> ()
  | _ -> Alcotest.fail "assignment should be right associative"

let t_ternary () =
  let e = Parser.expr "a ? b : c ? d : e" in
  match e.Ast.e with
  | Ast.Cond ({ e = Ast.Var "a"; _ }, _, { e = Ast.Cond _; _ }) -> ()
  | _ -> Alcotest.fail "ternary should nest right"

let t_unary_fold () =
  (match (Parser.expr "-5").Ast.e with
  | Ast.Int -5 -> ()
  | _ -> Alcotest.fail "negative literal should fold");
  match (Parser.expr "-x").Ast.e with
  | Ast.Un (Ast.Neg, _) -> ()
  | _ -> Alcotest.fail "negation of var stays"

let t_pointer_decls () =
  let p = Parser.program "int *p; char q[10]; int m[2][3]; int main() { return 0; }" in
  match p.Ast.globals with
  | [ Ast.Gvar (Ast.Tptr Ast.Tint, "p", None);
      Ast.Gvar (Ast.Tarr (Ast.Tchar, 10), "q", None);
      Ast.Gvar (Ast.Tarr (Ast.Tarr (Ast.Tint, 3), 2), "m", None);
      Ast.Gfunc _ ] ->
      ()
  | _ -> Alcotest.fail "declaration types wrong"

let t_comma_decl () =
  let p = Parser.program "int main() { int a, b, c; a = b = c = 1; return a; }" in
  let decls = ref 0 in
  Ast.iter_stmts
    (fun st -> match st.Ast.s with Ast.Sdecl _ -> incr decls | _ -> ())
    p;
  Alcotest.(check int) "three declarations" 3 !decls

let t_for_decl_desugar () =
  let p = Parser.program "int main() { for (int i = 0; i < 3; i++) { } return 0; }" in
  (* the for with declaration is wrapped in a block with the decl first *)
  let has_block_with_decl_and_for = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Sblock ({ s = Ast.Sdecl (_, "i", _); _ } :: { s = Ast.Sfor _; _ } :: _)
        ->
          has_block_with_decl_and_for := true
      | _ -> ())
    p;
  Alcotest.(check bool) "desugared" true !has_block_with_decl_and_for

let t_sizeof_fold () =
  (match (Parser.expr "sizeof(int)").Ast.e with
  | Ast.Int 4 -> ()
  | _ -> Alcotest.fail "sizeof(int) = 4");
  match (Parser.expr "sizeof(char[10])").Ast.e with
  | Ast.Int 10 -> ()
  | _ -> Alcotest.fail "sizeof(char[10]) = 10"

let t_checkpoint_stmt () =
  let p =
    Parser.program "int main() { __checkpoint(7, loop_enter); return 0; }"
  in
  let found = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Scheckpoint (7, Ast.Loop_enter) -> found := true
      | _ -> ())
    p;
  Alcotest.(check bool) "checkpoint parsed" true !found

let t_parse_errors () =
  List.iter
    (fun src ->
      try
        ignore (Parser.program src);
        Alcotest.failf "expected parse error for %S" src
      with Parser.Error _ -> ())
    [ "int main() { return 0 }"; "int main() { if; }"; "int 5x;";
      "int main() { a[; }"; "int f(int) { return 0; }" ]

let t_unique_ids () =
  let p = Parser.program (Foray_suite.Suite.find "gsm" |> Option.get).source in
  let eids = ref [] and sids = ref [] in
  Ast.iter_exprs (fun e -> eids := e.Ast.eid :: !eids) p;
  Ast.iter_stmts (fun s -> sids := s.Ast.sid :: !sids) p;
  let dup l = List.length (List.sort_uniq compare l) <> List.length l in
  (* iter_exprs visits top-level statement expressions; subexpressions are
     visited via iter_expr recursion, so collect those too *)
  Alcotest.(check bool) "sids unique" false (dup !sids);
  Alcotest.(check bool) "eids unique" false (dup !eids)

(* --- round trip ------------------------------------------------------ *)

let roundtrip src =
  let p1 = Parser.program src in
  let printed = Pretty.program p1 in
  let p2 = Parser.program printed in
  if not (Ast.equal_program p1 p2) then
    Alcotest.failf "round-trip mismatch:\n%s\n-- reprinted --\n%s" printed
      (Pretty.program p2)

let t_roundtrip_suite () =
  List.iter
    (fun (b : Foray_suite.Suite.bench) -> roundtrip b.source)
    Foray_suite.Suite.all

let t_roundtrip_figures () =
  List.iter (fun (_, src) -> roundtrip src) Foray_suite.Figures.all

let t_roundtrip_instrumented () =
  (* instrumented programs must print and re-parse too *)
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      let p = Parser.program b.source in
      let instr = Foray_instrument.Annotate.program p in
      let printed = Pretty.program instr in
      let p2 = Parser.program printed in
      if not (Ast.equal_program instr p2) then
        Alcotest.failf "instrumented round-trip failed for %s" b.name)
    Foray_suite.Suite.all

let t_roundtrip_tricky () =
  List.iter roundtrip
    [
      "int main() { int a; a = -5; a = - -a; a = 1 ? 2 : 3 ? 4 : 5; return a; }";
      "int A[4] = {1, -2, 3}; int main() { return A[0]; }";
      "int main() { int x; int *p; p = &x; *p = (3 + 4) * 2 % 5; return *p; }";
      "int main() { int i; for (;;) { i++; if (i > 3) { break; } } return i; }";
      "int main() { int a; a = 1 << 2 + 1; a = (1 << 2) + 1; return a; }";
      "int f(int a, char b) { return a + b; } int main() { return f(1, 'x'); }";
      "int main() { int x; x = 1; do { x *= 2; } while (x < 10); return x; }";
    ]

(* random expression generator for the printer/parser round-trip *)
let gen_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let counter = ref 0 in
  let mk e =
    incr counter;
    { Ast.e; eid = !counter }
  in
  let leaf =
    oneof
      [
        map (fun n -> mk (Ast.Int n)) (int_range 0 100);
        map (fun v -> mk (Ast.Var v)) (oneofl [ "a"; "b"; "c" ]);
      ]
  in
  let binop =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Mod; Shl; Shr; Band; Bor; Bxor; Lt; Gt; Le;
            Ge; Eq; Ne; Land; Lor ]
  in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        oneof
          [
            leaf;
            map3 (fun o l r -> mk (Ast.Bin (o, l, r))) binop (self (n / 2))
              (self (n / 2));
            map (fun e -> mk (Ast.Un (Ast.Lnot, e))) (self (n - 1));
            map (fun e -> mk (Ast.Un (Ast.Bnot, e))) (self (n - 1));
            map
              (fun (c, (a, b)) -> mk (Ast.Cond (c, a, b)))
              (pair (self (n / 3)) (pair (self (n / 3)) (self (n / 3))));
            map2 (fun a i -> mk (Ast.Index (a, i)))
              (map (fun v -> mk (Ast.Var v)) (oneofl [ "arr"; "buf" ]))
              (self (n - 1));
            map (fun e -> mk (Ast.Deref e)) (self (n - 1));
          ])
    8

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expression print/parse round-trip" ~count:500
    gen_expr (fun e ->
      let printed = Pretty.expr e in
      let e2 = Parser.expr printed in
      Ast.equal_expr e e2)

(* random statement generator over a small fixed vocabulary of variables *)
let gen_program : Ast.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let counter = ref 0 in
  let mke e =
    incr counter;
    { Ast.e; eid = !counter }
  in
  let mks s =
    incr counter;
    { Ast.s; sid = !counter }
  in
  let small_expr =
    oneof
      [
        map (fun n -> mke (Ast.Int n)) (int_range 0 50);
        map (fun v -> mke (Ast.Var v)) (oneofl [ "a"; "b" ]);
        map2
          (fun v n ->
            mke (Ast.Bin (Ast.Add, mke (Ast.Var v), mke (Ast.Int n))))
          (oneofl [ "a"; "b" ]) (int_range 0 9);
      ]
  in
  let assign =
    map2
      (fun v e -> mks (Ast.Sexpr (mke (Ast.Assign (mke (Ast.Var v), e)))))
      (oneofl [ "a"; "b" ]) small_expr
  in
  let gen_stmt =
    fix
      (fun self n ->
        if n = 0 then assign
        else
          oneof
            [
              assign;
              map (fun e -> mks (Ast.Sreturn (Some e))) small_expr;
              map2
                (fun c body -> mks (Ast.Sif (c, [ body ], [])))
                small_expr (self (n - 1));
              map2
                (fun c (a, b) -> mks (Ast.Sif (c, [ a ], [ b ])))
                small_expr
                (pair (self (n / 2)) (self (n / 2)));
              map
                (fun body ->
                  mks
                    (Ast.Sfor
                       ( Some (mke (Ast.Assign (mke (Ast.Var "a"), mke (Ast.Int 0)))),
                         Some
                           (mke (Ast.Bin (Ast.Lt, mke (Ast.Var "a"), mke (Ast.Int 3)))),
                         Some (mke (Ast.Incr (false, mke (Ast.Var "a")))),
                         [ body ] )))
                (self (n - 1));
              map2
                (fun c body -> mks (Ast.Swhile (c, [ body; mks Ast.Sbreak ])))
                small_expr (self (n - 1));
              map2
                (fun body c -> mks (Ast.Sdo ([ body ], c)))
                (self (n - 1)) small_expr;
              map2
                (fun scrut (a, b) ->
                  mks
                    (Ast.Sswitch
                       ( scrut,
                         [
                           { Ast.labels = [ Ast.Lcase 0 ];
                             body = [ a; mks Ast.Sbreak ] };
                           { Ast.labels = [ Ast.Lcase 1; Ast.Ldefault ];
                             body = [ b ] };
                         ] )))
                small_expr
                (pair (self (n / 2)) (self (n / 2)));
              map (fun body -> mks (Ast.Sblock [ body ])) (self (n - 1));
            ])
      5
  in
  let* stmts = list_size (int_range 1 6) gen_stmt in
  let decls =
    [
      mks (Ast.Sdecl (Ast.Tint, "a", None));
      mks (Ast.Sdecl (Ast.Tint, "b", None));
    ]
  in
  return
    {
      Ast.globals =
        [
          Ast.Gfunc
            {
              fname = "main";
              ret = Ast.Tint;
              params = [];
              body = decls @ stmts @ [ mks (Ast.Sreturn (Some (mke (Ast.Int 0)))) ];
            };
        ];
    }

let prop_program_roundtrip =
  QCheck2.Test.make ~name:"program print/parse round-trip" ~count:300
    gen_program (fun p ->
      let printed = Pretty.program p in
      let p2 = Parser.program printed in
      Ast.equal_program p p2)

let prop_program_sema_and_runs =
  QCheck2.Test.make ~name:"generated programs pass sema and terminate"
    ~count:150 gen_program (fun p ->
      match Sema.check p with
      | Error _ -> false
      | Ok () -> (
          let config =
            { Minic_sim.Interp.default_config with max_steps = 100_000 }
          in
          try
            ignore (Minic_sim.Interp.run ~config p ~sink:Foray_trace.Event.null_sink);
            true
          with Minic_sim.Interp.Runtime_error_at _ -> true))

(* --- sema ------------------------------------------------------------ *)

let sema_errors src =
  match Sema.check (Parser.program src) with
  | Ok () -> []
  | Error l -> List.map (fun (e : Sema.error) -> e.msg) l

let t_sema_ok () =
  List.iter
    (fun (b : Foray_suite.Suite.bench) ->
      Alcotest.(check (list string))
        (b.name ^ " passes sema") [] (sema_errors b.source))
    Foray_suite.Suite.all

let contains_substr ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_error src frag =
  let errs = sema_errors src in
  if not (List.exists (contains_substr ~sub:frag) errs) then
    Alcotest.failf "expected error containing %S, got [%s]" frag
      (String.concat "; " errs)

let t_sema_errors () =
  expect_error "int main() { return x; }" "undeclared";
  expect_error "int main() { nosuch(1); return 0; }" "unknown function";
  expect_error "int f(int a) { return a; } int main() { return f(); }"
    "argument";
  expect_error "int main() { break; }" "break outside loop";
  expect_error "int main() { 1 = 2; return 0; }" "non-lvalue";
  expect_error "void v; int main() { return 0; }" "void";
  expect_error "int a[0]; int main() { return 0; }" "dimension";
  expect_error "int f() { return 0; } int f() { return 1; } int main() { return 0; }"
    "duplicate";
  expect_error "int abs(int x) { return x; } int main() { return 0; }"
    "builtin";
  expect_error "int x; int x; int main() { return 0; }" "duplicate";
  expect_error "int main() { int a; int a; return 0; }" "duplicate";
  (* no main *)
  let errs = sema_errors "int f() { return 0; }" in
  Alcotest.(check bool) "missing main" true
    (List.exists (contains_substr ~sub:"main") errs)

let t_sema_scoping () =
  (* shadowing in an inner block is fine; sibling blocks are isolated *)
  Alcotest.(check (list string))
    "shadowing ok" []
    (sema_errors
       "int main() { int a; a = 1; { int a; a = 2; } { int a; a = 3; } return a; }")

let tests =
  [
    Alcotest.test_case "lexer basic" `Quick t_lexer_basic;
    Alcotest.test_case "lexer hex and char" `Quick t_lexer_hex_char;
    Alcotest.test_case "lexer comments" `Quick t_lexer_comments;
    Alcotest.test_case "lexer longest match" `Quick t_lexer_longest_match;
    Alcotest.test_case "lexer errors" `Quick t_lexer_errors;
    Alcotest.test_case "precedence" `Quick t_precedence;
    Alcotest.test_case "associativity" `Quick t_assoc;
    Alcotest.test_case "assignment right assoc" `Quick t_assign_right_assoc;
    Alcotest.test_case "ternary" `Quick t_ternary;
    Alcotest.test_case "negative literal folding" `Quick t_unary_fold;
    Alcotest.test_case "pointer declarations" `Quick t_pointer_decls;
    Alcotest.test_case "comma declarations" `Quick t_comma_decl;
    Alcotest.test_case "for-decl desugaring" `Quick t_for_decl_desugar;
    Alcotest.test_case "sizeof folding" `Quick t_sizeof_fold;
    Alcotest.test_case "checkpoint statement" `Quick t_checkpoint_stmt;
    Alcotest.test_case "parse errors" `Quick t_parse_errors;
    Alcotest.test_case "unique node ids" `Quick t_unique_ids;
    Alcotest.test_case "round-trip suite" `Quick t_roundtrip_suite;
    Alcotest.test_case "round-trip figures" `Quick t_roundtrip_figures;
    Alcotest.test_case "round-trip instrumented" `Quick t_roundtrip_instrumented;
    Alcotest.test_case "round-trip tricky" `Quick t_roundtrip_tricky;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_program_roundtrip;
    QCheck_alcotest.to_alcotest prop_program_sema_and_runs;
    Alcotest.test_case "sema accepts suite" `Quick t_sema_ok;
    Alcotest.test_case "sema rejects bad programs" `Quick t_sema_errors;
    Alcotest.test_case "sema scoping" `Quick t_sema_scoping;
  ]
