(* Provenance tests: recorded stories replay to the live Affine state
   (the qcheck oracle), pipeline runs give every tracked reference a
   first sighting and a verdict, verdicts replace on re-filtering, and
   the explain renderer compresses stories into derivation lines. *)

open Foray_core

(* Every test owns the global story registry for its duration. *)
let scoped f () =
  Provenance.reset ();
  Provenance.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Provenance.set_enabled false;
      Provenance.reset ())
    f

let contains hay needle =
  let n = String.length needle and hs = String.length hay in
  let rec go i = i + n <= hs && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- replay oracle ----------------------------------------------------- *)

(* Address streams covering the whole event vocabulary: exact affine
   functions (all coefficients solve), per-outer-iteration base jumps
   (mispredictions and demotion), and pure noise (non-analyzable or
   fully demoted). *)
let gen_case =
  QCheck2.Gen.(
    let* depth = int_range 1 3 in
    let* trips = list_repeat depth (int_range 2 4) in
    let* coeffs = list_repeat depth (int_range (-8) 8) in
    let* base = int_range 0 10_000 in
    let* kind = int_range 0 2 in
    let* seed = int_range 1 1_000_000 in
    return (trips, Array.of_list coeffs, base, kind, seed))

let addr_of_case (coeffs, base, kind, seed) it =
  let affine =
    let a = ref base in
    Array.iteri (fun i v -> a := !a + (coeffs.(i) * v)) it;
    !a
  in
  match kind with
  | 0 -> affine
  | 1 ->
      (* base jumps with the outermost iterator: demotion territory *)
      let outer = it.(Array.length it - 1) in
      affine + (((outer * seed) mod 7919) * 64)
  | _ ->
      (* deterministic hash noise: usually non-analyzable *)
      let h = ref seed in
      Array.iter (fun v -> h := (!h * 131) + v) it;
      (!h * 2654435761) land 0xFFFFF

let prop_replay_matches_live =
  QCheck2.Test.make ~name:"provenance replay reproduces the live tracker"
    ~count:300 gen_case (fun (trips, coeffs, base, kind, seed) ->
      Provenance.reset ();
      Provenance.set_enabled true;
      let aff =
        Fun.protect
          ~finally:(fun () -> Provenance.set_enabled false)
          (fun () ->
            Test_affine.drive ~trips
              ~addr_of:(addr_of_case (coeffs, base, kind, seed)))
      in
      let depth = List.length trips in
      match Provenance.story (Affine.uid aff) with
      | None -> false
      | Some story ->
          let rp = Provenance.replay ~depth story.events in
          rp.r_analyzable = Affine.analyzable aff
          && rp.r_m = Affine.m aff
          && rp.r_const = Some (Affine.const aff)
          && Array.for_all2
               (fun replayed live ->
                 match (replayed, live) with
                 | Some c, Affine.Known c' -> c = c'
                 | None, Affine.Unknown -> true
                 | _ -> false)
               rp.r_coeffs (Affine.coeffs aff))

(* --- pipeline coverage ------------------------------------------------- *)

let t_pipeline_stories () =
  let r =
    Tutil.run_source
      ~thresholds:Filter.{ nexec = 2; nloc = 2 }
      Foray_suite.Figures.fig4a
  in
  let refs = Looptree.refs r.tree in
  Alcotest.(check bool) "tree has references" true (refs <> []);
  List.iter
    (fun ((_ : Looptree.node), (ri : Looptree.refinfo)) ->
      match Provenance.story (Affine.uid ri.Looptree.aff) with
      | None -> Alcotest.fail "tracked reference without a story"
      | Some s ->
          (match s.events with
          | Provenance.First_sighting _ :: _ -> ()
          | _ -> Alcotest.fail "story does not open with a first sighting");
          Alcotest.(check bool) "story carries a verdict" true
            (List.exists
               (function Provenance.Verdict _ -> true | _ -> false)
               s.events))
    refs

let t_verdict_replaced () =
  Provenance.register ~uid:424242 ~site:1 ~depth:1;
  Provenance.record 424242
    (Provenance.Verdict { kept = false; reason = Some Provenance.Below_nexec });
  Provenance.record 424242 (Provenance.Verdict { kept = true; reason = None });
  match Provenance.story 424242 with
  | None -> Alcotest.fail "story missing"
  | Some s -> (
      let verdicts =
        List.filter
          (function Provenance.Verdict _ -> true | _ -> false)
          s.events
      in
      match verdicts with
      | [ Provenance.Verdict { kept; _ } ] ->
          Alcotest.(check bool) "later verdict wins" true kept
      | _ -> Alcotest.fail "expected exactly one verdict")

let t_disabled_records_nothing () =
  Provenance.set_enabled false;
  Provenance.register ~uid:777 ~site:1 ~depth:1;
  Provenance.record 777 (Provenance.First_sighting { exec = 0; addr = 4 });
  Alcotest.(check bool) "no story while disabled" true
    (Provenance.story 777 = None);
  (* records for never-registered uids are dropped, not crashed on *)
  Provenance.set_enabled true;
  Provenance.record 778 (Provenance.First_sighting { exec = 0; addr = 4 });
  Alcotest.(check bool) "unknown uid ignored" true (Provenance.story 778 = None)

(* --- explain rendering ------------------------------------------------- *)

let t_derivation_line () =
  let events =
    [ Provenance.First_sighting { exec = 0; addr = 1000 };
      Provenance.Coeff_solved
        { exec = 1; iter = 0; coeff = 4; d_addr = 4; d_iter = 1; const = 1000 };
      Provenance.Mispredicted
        { exec = 5; predicted = 1016; actual = 2000; sticky = [| false |];
          m = 1; const = 2000 }
    ]
  in
  (match Foray_report.Explain.derivation_line events with
  | Some line ->
      Alcotest.(check string) "compressed derivation"
        "C1=4 @exec 1; 1 misprediction" line
  | None -> Alcotest.fail "derivation expected");
  Alcotest.(check (option string)) "no inference, no line" None
    (Foray_report.Explain.derivation_line
       [ Provenance.Verdict { kept = true; reason = None } ])

let t_explain_smoke () =
  (* Explain manages the provenance flag itself; run it disabled to check
     the save/restore path too *)
  Provenance.set_enabled false;
  let e =
    Foray_report.Explain.run_source ~name:"fig4a"
      ~thresholds:Filter.{ nexec = 4; nloc = 4 }
      Foray_suite.Figures.fig4a
  in
  Alcotest.(check bool) "flag restored" false (Provenance.enabled ());
  Alcotest.(check bool) "references explained" true (e.refs <> []);
  List.iter
    (fun (s : Foray_report.Explain.ref_story) ->
      Alcotest.(check bool) "every story opens with a sighting" true
        (match s.events with
        | Provenance.First_sighting _ :: _ -> true
        | _ -> false))
    e.refs;
  let text = Foray_report.Explain.render e in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true (contains text needle))
    [ "foraygen explain: fig4a"; "reference "; "Step-4 purge summary";
      "FORAY model with derivations:" ];
  (* the paper's Figure 4 walkthrough: site 0x11 solves C1=1, C2=103 *)
  Alcotest.(check bool) "figure 4 derivation" true
    (contains text "C1=1 @exec 1" && contains text "C2=103");
  let unknown = Foray_report.Explain.render ~site:0xdead e in
  Alcotest.(check bool) "unknown site lists known ones" true
    (contains unknown "known sites:")

let tests =
  [
    QCheck_alcotest.to_alcotest prop_replay_matches_live;
    Alcotest.test_case "pipeline stories complete" `Quick
      (scoped t_pipeline_stories);
    Alcotest.test_case "verdict replaced on re-filter" `Quick
      (scoped t_verdict_replaced);
    Alcotest.test_case "disabled records nothing" `Quick
      (scoped t_disabled_records_nothing);
    Alcotest.test_case "derivation line" `Quick t_derivation_line;
    Alcotest.test_case "explain smoke" `Quick (scoped t_explain_smoke);
  ]
