(* Trace file persistence tests: both formats, streaming, auto-detection. *)

open Foray_trace

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let sample_trace () =
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let instrumented = Foray_instrument.Annotate.program prog in
  let sink, get = Event.collector () in
  let _ = Minic_sim.Interp.run instrumented ~sink in
  get ()

let t_roundtrip_text () =
  let trace = sample_trace () in
  let path = tmp "foray_text.tr" in
  Tracefile.save ~format:Tracefile.Text path trace;
  let back = Tracefile.load path in
  Alcotest.(check int) "length" (List.length trace) (List.length back);
  List.iter2 (fun a b -> if not (Event.equal a b) then Alcotest.fail "event") trace back

let t_roundtrip_binary () =
  let trace = sample_trace () in
  let path = tmp "foray_bin.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let back = Tracefile.load path in
  Alcotest.(check int) "length" (List.length trace) (List.length back);
  List.iter2 (fun a b -> if not (Event.equal a b) then Alcotest.fail "event") trace back

let t_binary_smaller () =
  let trace = sample_trace () in
  let pt = tmp "foray_sz_t.tr" and pb = tmp "foray_sz_b.tr" in
  Tracefile.save ~format:Tracefile.Text pt trace;
  Tracefile.save ~format:Tracefile.Binary pb trace;
  let size p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Alcotest.(check bool) "binary smaller than text" true (size pb < size pt)

let t_streaming_fold () =
  let trace = sample_trace () in
  let path = tmp "foray_fold.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let n = Tracefile.fold path (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "fold counts all" (List.length trace) n

let t_sink_to_file_streaming () =
  let path = tmp "foray_stream.tr" in
  let sink, close = Tracefile.sink_to_file ~format:Tracefile.Binary path in
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let instrumented = Foray_instrument.Annotate.program prog in
  let _ = Minic_sim.Interp.run instrumented ~sink in
  close ();
  let back = Tracefile.load path in
  Alcotest.(check int) "same as direct collection" 87 (List.length back)

let t_analysis_from_file_matches () =
  (* simulator -> file -> analyzer == online *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig1 in
  let r, trace = Tutil.run_offline prog in
  let path = tmp "foray_match.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let tree = Foray_core.Looptree.create () in
  Tracefile.iter path (Foray_core.Looptree.sink tree);
  let model =
    Foray_core.Model.of_tree ~loop_kinds:r.loop_kinds tree
  in
  Alcotest.(check string) "same model"
    (Foray_core.Model.to_c r.model)
    (Foray_core.Model.to_c model)

let t_empty_file () =
  let path = tmp "foray_empty.tr" in
  let oc = open_out path in
  close_out oc;
  Alcotest.(check int) "empty file, empty trace" 0
    (List.length (Tracefile.load path))

let expect_corrupt what f =
  try
    ignore (f ());
    Alcotest.fail (what ^ ": expected Tracefile.Corrupt")
  with Tracefile.Corrupt _ -> ()

let t_corrupt_binary () =
  let path = tmp "foray_corrupt.tr" in
  let oc = open_out_bin path in
  output_string oc "FORAYTR1";
  output_string oc "\x09";
  (* bad tag *)
  close_out oc;
  expect_corrupt "bad tag" (fun () -> Tracefile.load path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let t_truncated_binary () =
  (* chopping 1 or 2 bytes always cuts the final record mid-body (the
     smallest record, a checkpoint, is 3 bytes), which must surface as
     Corrupt rather than a silently shorter trace *)
  let trace = sample_trace () in
  let whole = tmp "foray_trunc_src.tr" in
  Tracefile.save ~format:Tracefile.Binary whole trace;
  let bytes = read_file whole in
  List.iter
    (fun chop ->
      let path = tmp (Printf.sprintf "foray_trunc_%d.tr" chop) in
      write_file path (String.sub bytes 0 (String.length bytes - chop));
      expect_corrupt
        (Printf.sprintf "chopped %d byte(s)" chop)
        (fun () -> Tracefile.load path))
    [ 1; 2 ]

let t_truncated_header () =
  (* EOF while still inside the first record's body *)
  let path = tmp "foray_trunc_hdr.tr" in
  write_file path "FORAYTR1\x00";
  (* checkpoint tag with no kind/loop *)
  expect_corrupt "mid-record eof" (fun () -> Tracefile.load path)

let t_oversized_varint () =
  (* ten continuation bytes would shift past bit 62: reject, don't wrap *)
  let path = tmp "foray_bigvarint.tr" in
  write_file path ("FORAYTR1\x00" ^ String.make 10 '\xff');
  expect_corrupt "oversized varint" (fun () -> Tracefile.load path)

let t_bitflipped_magic () =
  (* a damaged magic demotes the file to the text reader, which must then
     reject the binary payload instead of decoding garbage *)
  let trace = sample_trace () in
  let src = tmp "foray_flip_src.tr" in
  Tracefile.save ~format:Tracefile.Binary src trace;
  let bytes = Bytes.of_string (read_file src) in
  Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 1));
  let path = tmp "foray_flip.tr" in
  write_file path (Bytes.to_string bytes);
  expect_corrupt "flipped magic" (fun () -> Tracefile.load path)

let t_corrupt_text_line () =
  let path = tmp "foray_badline.tr" in
  write_file path "Checkpoint: 1 loop_enter\nthis is not a trace record\n";
  expect_corrupt "bad text line" (fun () -> Tracefile.load path)

let t_varint_values () =
  (* exercise multi-byte varints through large addresses *)
  let big =
    [ Event.Access
        { site = 0x0f00_ffff; addr = 0x7fff_fff7; write = true; sys = true;
          width = 8 };
      Event.Checkpoint { loop = 1_000_000; kind = Event.Body_exit } ]
  in
  let path = tmp "foray_big.tr" in
  Tracefile.save ~format:Tracefile.Binary path big;
  let back = Tracefile.load path in
  List.iter2
    (fun a b -> if not (Event.equal a b) then Alcotest.fail "big values")
    big back

let tests =
  [
    Alcotest.test_case "text round-trip" `Quick t_roundtrip_text;
    Alcotest.test_case "binary round-trip" `Quick t_roundtrip_binary;
    Alcotest.test_case "binary is smaller" `Quick t_binary_smaller;
    Alcotest.test_case "streaming fold" `Quick t_streaming_fold;
    Alcotest.test_case "streaming writer" `Quick t_sink_to_file_streaming;
    Alcotest.test_case "file analysis matches online" `Quick
      t_analysis_from_file_matches;
    Alcotest.test_case "empty file" `Quick t_empty_file;
    Alcotest.test_case "corrupt binary" `Quick t_corrupt_binary;
    Alcotest.test_case "truncated binary" `Quick t_truncated_binary;
    Alcotest.test_case "truncated first record" `Quick t_truncated_header;
    Alcotest.test_case "oversized varint" `Quick t_oversized_varint;
    Alcotest.test_case "bit-flipped magic" `Quick t_bitflipped_magic;
    Alcotest.test_case "corrupt text line" `Quick t_corrupt_text_line;
    Alcotest.test_case "large varints" `Quick t_varint_values;
  ]
