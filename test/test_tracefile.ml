(* Trace file persistence tests: both formats, streaming, auto-detection. *)

open Foray_trace

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let sample_trace () =
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let instrumented = Foray_instrument.Annotate.program prog in
  let sink, get = Event.collector () in
  let _ = Minic_sim.Interp.run instrumented ~sink in
  get ()

let t_roundtrip_text () =
  let trace = sample_trace () in
  let path = tmp "foray_text.tr" in
  Tracefile.save ~format:Tracefile.Text path trace;
  let back = Tracefile.load path in
  Alcotest.(check int) "length" (List.length trace) (List.length back);
  List.iter2 (fun a b -> if not (Event.equal a b) then Alcotest.fail "event") trace back

let t_roundtrip_binary () =
  let trace = sample_trace () in
  let path = tmp "foray_bin.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let back = Tracefile.load path in
  Alcotest.(check int) "length" (List.length trace) (List.length back);
  List.iter2 (fun a b -> if not (Event.equal a b) then Alcotest.fail "event") trace back

let t_binary_smaller () =
  let trace = sample_trace () in
  let pt = tmp "foray_sz_t.tr" and pb = tmp "foray_sz_b.tr" in
  Tracefile.save ~format:Tracefile.Text pt trace;
  Tracefile.save ~format:Tracefile.Binary pb trace;
  let size p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Alcotest.(check bool) "binary smaller than text" true (size pb < size pt)

let t_streaming_fold () =
  let trace = sample_trace () in
  let path = tmp "foray_fold.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let n = Tracefile.fold path (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "fold counts all" (List.length trace) n

let t_sink_to_file_streaming () =
  let path = tmp "foray_stream.tr" in
  let sink, close = Tracefile.sink_to_file ~format:Tracefile.Binary path in
  let prog = Minic.Parser.program Foray_suite.Figures.fig4a in
  let instrumented = Foray_instrument.Annotate.program prog in
  let _ = Minic_sim.Interp.run instrumented ~sink in
  close ();
  let back = Tracefile.load path in
  Alcotest.(check int) "same as direct collection" 87 (List.length back)

let t_analysis_from_file_matches () =
  (* simulator -> file -> analyzer == online *)
  let prog = Minic.Parser.program Foray_suite.Figures.fig1 in
  let r, trace = Tutil.run_offline prog in
  let path = tmp "foray_match.tr" in
  Tracefile.save ~format:Tracefile.Binary path trace;
  let tree = Foray_core.Looptree.create () in
  Tracefile.iter path (Foray_core.Looptree.sink tree);
  let model =
    Foray_core.Model.of_tree ~loop_kinds:r.loop_kinds tree
  in
  Alcotest.(check string) "same model"
    (Foray_core.Model.to_c r.model)
    (Foray_core.Model.to_c model)

let t_empty_file () =
  let path = tmp "foray_empty.tr" in
  let oc = open_out path in
  close_out oc;
  Alcotest.(check int) "empty file, empty trace" 0
    (List.length (Tracefile.load path))

let expect_corrupt what f =
  try
    ignore (f ());
    Alcotest.fail (what ^ ": expected Tracefile.Corrupt")
  with Tracefile.Corrupt _ -> ()

let t_corrupt_binary () =
  let path = tmp "foray_corrupt.tr" in
  let oc = open_out_bin path in
  output_string oc "FORAYTR1";
  output_string oc "\x09";
  (* bad tag *)
  close_out oc;
  expect_corrupt "bad tag" (fun () -> Tracefile.load path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let t_truncated_binary () =
  (* chopping 1 or 2 bytes always cuts the final record mid-body (the
     smallest record, a checkpoint, is 3 bytes), which must surface as
     Corrupt rather than a silently shorter trace *)
  let trace = sample_trace () in
  let whole = tmp "foray_trunc_src.tr" in
  Tracefile.save ~format:Tracefile.Binary whole trace;
  let bytes = read_file whole in
  List.iter
    (fun chop ->
      let path = tmp (Printf.sprintf "foray_trunc_%d.tr" chop) in
      write_file path (String.sub bytes 0 (String.length bytes - chop));
      expect_corrupt
        (Printf.sprintf "chopped %d byte(s)" chop)
        (fun () -> Tracefile.load path))
    [ 1; 2 ]

let t_truncated_header () =
  (* EOF while still inside the first record's body *)
  let path = tmp "foray_trunc_hdr.tr" in
  write_file path "FORAYTR1\x00";
  (* checkpoint tag with no kind/loop *)
  expect_corrupt "mid-record eof" (fun () -> Tracefile.load path)

let t_oversized_varint () =
  (* ten continuation bytes would shift past bit 62: reject, don't wrap *)
  let path = tmp "foray_bigvarint.tr" in
  write_file path ("FORAYTR1\x00" ^ String.make 10 '\xff');
  expect_corrupt "oversized varint" (fun () -> Tracefile.load path)

let t_bitflipped_magic () =
  (* a damaged magic demotes the file to the text reader, which must then
     reject the binary payload instead of decoding garbage *)
  let trace = sample_trace () in
  let src = tmp "foray_flip_src.tr" in
  Tracefile.save ~format:Tracefile.Binary src trace;
  let bytes = Bytes.of_string (read_file src) in
  Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 1));
  let path = tmp "foray_flip.tr" in
  write_file path (Bytes.to_string bytes);
  expect_corrupt "flipped magic" (fun () -> Tracefile.load path)

let t_corrupt_text_line () =
  let path = tmp "foray_badline.tr" in
  write_file path "Checkpoint: 1 loop_enter\nthis is not a trace record\n";
  expect_corrupt "bad text line" (fun () -> Tracefile.load path)

let t_varint_values () =
  (* exercise multi-byte varints through large addresses *)
  let big =
    [ Event.Access
        { site = 0x0f00_ffff; addr = 0x7fff_fff7; write = true; sys = true;
          width = 8 };
      Event.Checkpoint { loop = 1_000_000; kind = Event.Body_exit } ]
  in
  let path = tmp "foray_big.tr" in
  Tracefile.save ~format:Tracefile.Binary path big;
  let back = Tracefile.load path in
  List.iter2
    (fun a b -> if not (Event.equal a b) then Alcotest.fail "big values")
    big back

(* ---- FORAYTR2 (v2 frame format) ------------------------------------- *)

let check_equal_traces what a b =
  Alcotest.(check int) (what ^ ": length") (List.length a) (List.length b);
  List.iter2
    (fun x y -> if not (Event.equal x y) then Alcotest.fail (what ^ ": event"))
    a b

let t_roundtrip_v2 () =
  let trace = sample_trace () in
  let path = tmp "foray_v2.tr" in
  Tracefile.save ~format:Tracefile.Binary2 path trace;
  Alcotest.(check bool) "sniffed as v2" true (Tracefile.is_binary2 path);
  check_equal_traces "v2 round-trip" trace (Tracefile.load path)

let t_v2_smaller_than_v1 () =
  let trace = sample_trace () in
  let p1 = tmp "foray_sz_v1.tr" and p2 = tmp "foray_sz_v2.tr" in
  Tracefile.save ~format:Tracefile.Binary p1 trace;
  Tracefile.save ~format:Tracefile.Binary2 p2 trace;
  let size p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Alcotest.(check bool) "v2 smaller than v1" true (size p2 < size p1)

let t_v2_mapped_reader () =
  let trace = sample_trace () in
  let path = tmp "foray_v2_map.tr" in
  Tracefile.save ~format:Tracefile.Binary2 path trace;
  let m = Tracefile.map path in
  Alcotest.(check int) "frame headers count all events" (List.length trace)
    (Tracefile.mapped_events m);
  let sink, get = Event.collector () in
  Tracefile.iter_mapped m sink;
  check_equal_traces "mapped decode" trace (get ())

let t_v2_obs_counters () =
  let trace = sample_trace () in
  let path = tmp "foray_v2_obs.tr" in
  Foray_obs.Obs.reset ();
  Foray_obs.Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Foray_obs.Obs.set_enabled false)
    (fun () ->
      Tracefile.save ~frame_events:16 ~format:Tracefile.Binary2 path trace;
      let m = Tracefile.map path in
      Tracefile.iter_mapped m Event.null_sink;
      let v name = Option.value ~default:0 (Foray_obs.Obs.value name) in
      Alcotest.(check bool) "frames written" true (v "trace.frames_written" > 1);
      Alcotest.(check int) "frames read = frames written"
        (v "trace.frames_written") (v "trace.frames_read");
      Alcotest.(check bool) "bytes mapped covers the file" true
        (v "trace.bytes_mapped" > 8))

let t_v2_empty_trace () =
  let path = tmp "foray_v2_empty.tr" in
  Tracefile.save ~format:Tracefile.Binary2 path [];
  Alcotest.(check int) "no events" 0 (List.length (Tracefile.load path));
  Alcotest.(check int) "no mapped events" 0
    (Tracefile.mapped_events (Tracefile.map path))

let t_v2_frame_boundaries () =
  (* a tiny frame budget forces many frames, so dictionary reset, address
     delta reset and context capture all happen mid-trace *)
  let trace = sample_trace () in
  let path = tmp "foray_v2_frames.tr" in
  Tracefile.save ~frame_events:2 ~format:Tracefile.Binary2 path trace;
  check_equal_traces "tiny frames" trace (Tracefile.load path)

let t_v2_escape_paths () =
  (* head-byte escapes: loop ids past the 4-bit inline range, more sites
     than the 3-bit dictionary window, widths outside {1,4,8}, and address
     deltas in both directions *)
  let ck loop kind = Event.Checkpoint { loop; kind } in
  let acc site addr width =
    Event.Access { site; addr; write = false; sys = true; width }
  in
  let trace =
    ck 15 Event.Loop_enter
    :: ck 1_000_000 Event.Body_enter
    :: List.init 12 (fun i -> acc (0x100 + i) (0x7fff_0000 - (i * 4096)) 3)
    @ [ acc 0x100 16 16; ck 1_000_000 Event.Body_exit;
        ck 15 Event.Loop_exit ]
  in
  let path = tmp "foray_v2_escape.tr" in
  Tracefile.save ~frame_events:4 ~format:Tracefile.Binary2 path trace;
  check_equal_traces "escape paths" trace (Tracefile.load path)

let t_v2_truncated () =
  let trace = sample_trace () in
  let whole = tmp "foray_v2_trunc_src.tr" in
  Tracefile.save ~format:Tracefile.Binary2 whole trace;
  let bytes = read_file whole in
  List.iter
    (fun chop ->
      let path = tmp (Printf.sprintf "foray_v2_trunc_%d.tr" chop) in
      write_file path (String.sub bytes 0 (String.length bytes - chop));
      expect_corrupt
        (Printf.sprintf "v2 chopped %d byte(s)" chop)
        (fun () -> Tracefile.load path))
    [ 1; 7; 64 ]

let t_v2_bad_frame_header () =
  let trace = sample_trace () in
  let src = tmp "foray_v2_hdr_src.tr" in
  Tracefile.save ~format:Tracefile.Binary2 src trace;
  let bytes = Bytes.of_string (read_file src) in
  (* flip a bit in the first frame's magic (right after the file magic) *)
  Bytes.set bytes 8 (Char.chr (Char.code (Bytes.get bytes 8) lxor 1));
  let path = tmp "foray_v2_hdr.tr" in
  write_file path (Bytes.to_string bytes);
  expect_corrupt "v2 frame magic" (fun () -> Tracefile.load path);
  (* oversized body_len walks the next frame off the end of the file *)
  let bytes = Bytes.of_string (read_file src) in
  Bytes.set bytes 12 '\xff';
  Bytes.set bytes 13 '\xff';
  write_file path (Bytes.to_string bytes);
  expect_corrupt "v2 oversized body" (fun () -> Tracefile.load path)

(* Differential property: the v2 encoder/decoder agrees with v1 on
   arbitrary event streams, with a frame budget small enough that frame
   boundaries land everywhere, including between a checkpoint and its
   accesses. *)
let gen_v2_event =
  let open QCheck2.Gen in
  oneof
    [
      (let* loop = oneof [ int_bound 14; int_range 15 2_000_000 ] in
       let* kind =
         oneofl
           [ Event.Loop_enter; Event.Body_enter; Event.Body_exit;
             Event.Loop_exit ]
       in
       return (Event.Checkpoint { loop; kind }));
      (let* site = oneof [ int_bound 6; int_bound 0xfff_ffff ] in
       let* addr = oneof [ int_bound 0xffff; int_bound 0x3fff_ffff_ffff ] in
       let* write = bool in
       let* sys = bool in
       let* width = oneofl [ 1; 2; 3; 4; 8; 16; 64 ] in
       return (Event.Access { site; addr; write; sys; width }));
    ]

let prop_v2_equals_v1 =
  QCheck2.Test.make ~name:"v1 and v2 round-trip the same stream identically"
    ~count:150
    QCheck2.Gen.(list_size (int_range 0 128) gen_v2_event)
    (fun trace ->
      let p1 = tmp "foray_q_v1.tr" and p2 = tmp "foray_q_v2.tr" in
      Tracefile.save ~format:Tracefile.Binary p1 trace;
      Tracefile.save ~frame_events:4 ~format:Tracefile.Binary2 p2 trace;
      let b1 = Tracefile.load p1 and b2 = Tracefile.load p2 in
      List.length b1 = List.length trace
      && List.length b2 = List.length trace
      && List.for_all2 Event.equal b1 b2)

let tests =
  [
    Alcotest.test_case "text round-trip" `Quick t_roundtrip_text;
    Alcotest.test_case "binary round-trip" `Quick t_roundtrip_binary;
    Alcotest.test_case "binary is smaller" `Quick t_binary_smaller;
    Alcotest.test_case "streaming fold" `Quick t_streaming_fold;
    Alcotest.test_case "streaming writer" `Quick t_sink_to_file_streaming;
    Alcotest.test_case "file analysis matches online" `Quick
      t_analysis_from_file_matches;
    Alcotest.test_case "empty file" `Quick t_empty_file;
    Alcotest.test_case "corrupt binary" `Quick t_corrupt_binary;
    Alcotest.test_case "truncated binary" `Quick t_truncated_binary;
    Alcotest.test_case "truncated first record" `Quick t_truncated_header;
    Alcotest.test_case "oversized varint" `Quick t_oversized_varint;
    Alcotest.test_case "bit-flipped magic" `Quick t_bitflipped_magic;
    Alcotest.test_case "corrupt text line" `Quick t_corrupt_text_line;
    Alcotest.test_case "large varints" `Quick t_varint_values;
    Alcotest.test_case "v2 round-trip" `Quick t_roundtrip_v2;
    Alcotest.test_case "v2 smaller than v1" `Quick t_v2_smaller_than_v1;
    Alcotest.test_case "v2 mapped reader" `Quick t_v2_mapped_reader;
    Alcotest.test_case "v2 obs counters" `Quick t_v2_obs_counters;
    Alcotest.test_case "v2 empty trace" `Quick t_v2_empty_trace;
    Alcotest.test_case "v2 tiny frames" `Quick t_v2_frame_boundaries;
    Alcotest.test_case "v2 head-byte escapes" `Quick t_v2_escape_paths;
    Alcotest.test_case "v2 truncation" `Quick t_v2_truncated;
    Alcotest.test_case "v2 damaged frame header" `Quick t_v2_bad_frame_header;
    QCheck_alcotest.to_alcotest prop_v2_equals_v1;
  ]
