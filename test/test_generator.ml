(* End-to-end ground-truth property: whatever the surface syntax (direct
   indexing, for-pointer walks, while-pointer walks), FORAY-GEN must
   recover exactly the planted byte coefficients. *)

open Foray_core
module Generator = Foray_util.Progen

let term_multiset model =
  Model.all_refs model
  |> List.map (fun (_, (mr : Model.mref)) -> List.map fst mr.terms)
  |> List.sort compare

let planted_multiset (g : Generator.t) =
  g.planted
  |> List.map (fun (p : Generator.planted) -> p.terms)
  |> List.sort compare

let run_one seed nests =
  let g = Generator.generate ~seed ~nests in
  let r =
    try Tutil.run_source g.source
    with e ->
      Alcotest.failf "seed %d: pipeline failed (%s) on:\n%s" seed
        (Printexc.to_string e) g.source
  in
  let got = term_multiset r.model in
  let want = planted_multiset g in
  if got <> want then
    Alcotest.failf
      "seed %d: planted coefficients not recovered\nwant: %s\ngot:  %s\n%s"
      seed
      (String.concat " | "
         (List.map (fun l -> String.concat "," (List.map string_of_int l)) want))
      (String.concat " | "
         (List.map (fun l -> String.concat "," (List.map string_of_int l)) got))
      g.source;
  (g, r)

let t_deterministic () =
  let a = Generator.generate ~seed:7 ~nests:3 in
  let b = Generator.generate ~seed:7 ~nests:3 in
  Alcotest.(check string) "same seed same program" a.source b.source;
  let c = Generator.generate ~seed:8 ~nests:3 in
  Alcotest.(check bool) "different seed differs" true (a.source <> c.source)

let t_generated_parse_and_check () =
  for seed = 1 to 20 do
    let g = Generator.generate ~seed ~nests:((seed mod 8) + 1) in
    let prog = Minic.Parser.program g.source in
    Minic.Sema.check_exn prog
  done

let t_ground_truth_sweep () =
  for seed = 1 to 25 do
    ignore (run_one seed ((seed mod 4) + 1))
  done

let t_styles_and_static () =
  (* while-walks must never be statically analyzable; the recovered model
     must still carry them (that is FORAY-GEN's whole point) *)
  let found = ref false in
  let seed = ref 0 in
  while not !found && !seed < 30 do
    incr seed;
    let g = Generator.generate ~seed:!seed ~nests:4 in
    if
      List.exists
        (fun (p : Generator.planted) -> p.style = Generator.Ptr_while)
        g.planted
    then begin
      found := true;
      let g, r = run_one !seed 4 in
      let static = Foray_static.Baseline.analyze r.program in
      (* count dynamic-only refs: at least the pointer-walk ones *)
      let not_static =
        List.filter
          (fun (_, (mr : Model.mref)) ->
            not (Foray_static.Baseline.ref_analyzable static mr.site))
          (Model.all_refs r.model)
      in
      let walks =
        List.filter
          (fun (p : Generator.planted) -> p.style <> Generator.Direct)
          g.planted
      in
      Alcotest.(check bool) "pointer walks escape static analysis" true
        (List.length not_static >= List.length walks)
    end
  done;
  Alcotest.(check bool) "found a while-walk case" true !found

let t_trip_counts () =
  let g, r = run_one 42 3 in
  (* every planted nest's trips appear in the model *)
  let model_trips =
    Model.all_refs r.model
    |> List.map (fun (chain, _) ->
           List.map (fun (l : Model.mloop) -> l.trip) chain)
    |> List.sort compare
  in
  let want =
    g.planted
    |> List.map (fun (p : Generator.planted) -> p.trips)
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "trip counts" want model_trips

let tests =
  [
    Alcotest.test_case "generator deterministic" `Quick t_deterministic;
    Alcotest.test_case "generated programs are valid" `Quick
      t_generated_parse_and_check;
    Alcotest.test_case "ground truth recovered (25 seeds)" `Slow
      t_ground_truth_sweep;
    Alcotest.test_case "walks escape static analysis" `Quick
      t_styles_and_static;
    Alcotest.test_case "trip counts recovered" `Quick t_trip_counts;
  ]
