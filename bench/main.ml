(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, the Phase II SPM results, the ablations called out in
   DESIGN.md, and bechamel microbenchmarks for the complexity claims.

   Run with: dune exec bench/main.exe -- [-j N] [--json] [--quick]

   Sections render to strings and run on a Foray_util.Parallel domain
   pool ([-j N], default = recommended domain count); output is printed
   in section order afterwards, so tables are byte-identical for any -j.
   --json additionally writes BENCH_pipeline.json, the perf-regression
   record tracked across PRs (see EXPERIMENTS.md for the field list);
   --quick trims the workload to a CI-sized smoke run. *)

open Foray_core
module Report = Foray_report.Report
module Suite = Foray_suite.Suite
module Figures = Foray_suite.Figures
module Tablefmt = Foray_util.Tablefmt
module Parallel = Foray_util.Parallel
module Obs = Foray_obs.Obs
module Span = Foray_obs.Span

let jobs = ref (Parallel.default_jobs ())
let json = ref false
let json_file = ref "BENCH_pipeline.json"
let quick = ref false
let trace_out = ref ""

let now = Unix.gettimeofday

let bsection b title =
  Printf.bprintf b "\n%s\n%s\n" title (String.make (String.length title) '=')

let th nexec nloc = Filter.{ nexec; nloc }

(* Typed-API unwrappers: the harness's error policy for runs that must
   succeed is to abort with the typed error (guarded nowhere, so the
   registered printer renders it). *)
let run_ok ?config ?thresholds prog =
  match Pipeline.run ?config ?thresholds prog with
  | Ok (o : Pipeline.outcome) -> o.result
  | Error e -> Error.raise_error e

let run_source_ok ?config ?thresholds src =
  match Pipeline.run_source ?config ?thresholds src with
  | Ok (o : Pipeline.outcome) -> o.result
  | Error e -> Error.raise_error e

let run_offline_ok ?thresholds ?shards ?jobs prog =
  match Pipeline.run_offline ?thresholds ?shards ?jobs prog with
  | Ok ((o : Pipeline.outcome), trace) -> (o.result, trace)
  | Error e -> Error.raise_error e

(* ------------------------------------------------------------------ *)
(* Tables I-III (the paper's evaluation section)                       *)
(* ------------------------------------------------------------------ *)

let tables b =
  bsection b "Paper evaluation: Tables I-III";
  let t0 = now () in
  let reports = Report.report_all () in
  Printf.bprintf b "(pipeline over the 6-benchmark suite: %.2fs)\n\n"
    (now () -. t0);
  Buffer.add_string b (Report.table1 reports);
  Buffer.add_char b '\n';
  Buffer.add_string b (Report.table2 reports);
  Buffer.add_char b '\n';
  Buffer.add_string b (Report.table3 reports);
  Buffer.add_char b '\n';
  Buffer.add_string b (Report.headline reports)

(* ------------------------------------------------------------------ *)
(* Figure reproductions                                                *)
(* ------------------------------------------------------------------ *)

let figure2 b =
  bsection b "Figure 2: FORAY models of the Figure 1 excerpts";
  let r = run_source_ok ~thresholds:(th 10 10) Figures.fig1 in
  Buffer.add_string b (Model.to_c r.model)

let figure4 b =
  bsection b "Figure 4: annotated program, trace and model";
  let prog = Minic.Parser.program Figures.fig4a in
  let _, trace = run_offline_ok ~thresholds:(th 2 2) prog in
  Printf.bprintf b "trace (first 16 of %d records):\n" (List.length trace);
  List.iteri
    (fun i e ->
      if i < 16 then
        Printf.bprintf b "  %s\n" (Foray_trace.Event.to_line e))
    trace;
  let r = run_source_ok ~thresholds:(th 2 2) Figures.fig4a in
  Buffer.add_string b (Model.to_c r.model)

let figure7 b =
  bsection b "Figure 7: partial affine index expressions";
  List.iter
    (fun (name, src) ->
      let r = run_source_ok ~thresholds:(th 10 5) src in
      let partials =
        List.filter (fun (_, (mr : Model.mref)) -> mr.partial)
          (Model.all_refs r.model)
      in
      Printf.bprintf b "%s: %d model ref(s), %d partial\n" name
        (Model.n_refs r.model) (List.length partials);
      List.iter
        (fun (_, (mr : Model.mref)) ->
          Printf.bprintf b
            "  site %x: partial over %d of %d loops, expression %s\n" mr.site
            mr.m mr.depth (Model.expr_of_ref mr))
        partials)
    [ ("fig7a (stack base)", Figures.fig7a);
      ("fig7b (offset param)", Figures.fig7b) ]

let figure9 b =
  bsection b "Figure 9: function duplication hints";
  let r = run_source_ok ~thresholds:(th 5 5) Figures.fig9 in
  Buffer.add_string b (Hints.to_string (Pipeline.hints r))

(* ------------------------------------------------------------------ *)
(* Phase II: SPM design-space exploration                              *)
(* ------------------------------------------------------------------ *)

let spm_sweep b =
  bsection b "Phase II: SPM energy savings per benchmark (optimal selection)";
  let sizes = [ 256; 512; 1024; 2048; 4096; 8192; 16384 ] in
  let t =
    Tablefmt.create ~title:"Energy saved vs all-main-memory, by SPM size"
      ("Benchmark" :: List.map (fun s -> Printf.sprintf "%dB" s) sizes)
  in
  List.iter
    (fun (bench : Suite.bench) ->
      let r = run_source_ok bench.source in
      let cands = Foray_spm.Reuse.candidates r.model in
      let row =
        List.map
          (fun s ->
            let sel = Foray_spm.Dse.select_optimal cands ~spm_bytes:s in
            Printf.sprintf "%.1f%%" sel.saving_pct)
          sizes
      in
      Tablefmt.row t (bench.name :: row))
    Suite.all;
  Buffer.add_string b (Tablefmt.render t)

let spm_vs_cache b =
  bsection b "SPM vs cache (the Banakar premise, over array traffic)";
  List.iter
    (fun capacity ->
      let results =
        List.map (fun bn -> Foray_report.Memcompare.run bn ~capacity) Suite.all
      in
      Buffer.add_string b (Foray_report.Memcompare.table ~capacity results);
      Buffer.add_char b '\n')
    [ 1024; 2048 ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_thresholds b =
  bsection b "Ablation: Step 4 thresholds (jpeg)";
  let prog = Minic.Parser.program (Option.get (Suite.find "jpeg")).source in
  let t =
    Tablefmt.create ~title:"Model size vs (Nexec, Nloc)"
      [ "Nexec"; "Nloc"; "model refs"; "model loops" ]
  in
  List.iter
    (fun (nexec, nloc) ->
      let r = run_ok ~thresholds:(th nexec nloc) prog in
      Tablefmt.row t
        [
          string_of_int nexec; string_of_int nloc;
          string_of_int (Model.n_refs r.model);
          string_of_int (Model.n_loops r.model);
        ])
    [ (1, 1); (5, 5); (20, 10); (100, 10); (20, 100); (1000, 1000) ];
  Buffer.add_string b (Tablefmt.render t);
  Buffer.add_string b
    "(the paper's Nexec=20/Nloc=10 keeps the reusable references and drops\n\
    \ scalar and small-array traffic)\n"

let ablation_partial b =
  bsection b "Ablation: value of partial affine expressions";
  let t =
    Tablefmt.create
      ~title:"Model references lost if partial expressions were rejected"
      [ "Benchmark"; "refs"; "partial"; "lost accesses" ]
  in
  List.iter
    (fun (bench : Suite.bench) ->
      let r = run_source_ok bench.source in
      let refs = Model.all_refs r.model in
      let partial =
        List.filter (fun (_, (mr : Model.mref)) -> mr.partial) refs
      in
      let lost =
        List.fold_left (fun a (_, (mr : Model.mref)) -> a + mr.execs) 0 partial
      in
      Tablefmt.row t
        [
          bench.name;
          string_of_int (List.length refs);
          string_of_int (List.length partial);
          string_of_int lost;
        ])
    Suite.all;
  Buffer.add_string b (Tablefmt.render t)

let ablation_dse b =
  bsection b "Ablation: greedy vs optimal vs stochastic buffer selection \
              (4 KiB SPM)";
  let t =
    Tablefmt.create
      ~title:"Energy saving, greedy vs grouped-knapsack DP vs annealing"
      [ "Benchmark"; "greedy"; "optimal"; "stochastic" ]
  in
  List.iter
    (fun (bench : Suite.bench) ->
      let r = run_source_ok bench.source in
      let cands = Foray_spm.Reuse.candidates r.model in
      let g = Foray_spm.Dse.select_greedy cands ~spm_bytes:4096 in
      let o = Foray_spm.Dse.select_optimal cands ~spm_bytes:4096 in
      let s =
        Foray_spm.Dse.solve
          ~strategy:(Foray_spm.Dse.Stochastic Foray_spm.Stochastic.default_config)
          cands ~spm_bytes:4096
      in
      Tablefmt.row t
        [
          bench.name;
          Printf.sprintf "%.1f%%" g.saving_pct;
          Printf.sprintf "%.1f%%" o.saving_pct;
          Printf.sprintf "%.1f%%" s.selection.saving_pct;
        ])
    Suite.all;
  Buffer.add_string b (Tablefmt.render t)

let ablation_fusion b =
  bsection b "Ablation: buffer fusion (stencil sharing)";
  let t =
    Tablefmt.create
      ~title:"Energy saving at 1 KiB, separate vs fused buffers"
      [ "Benchmark"; "groups"; "fused groups"; "separate"; "fused" ]
  in
  List.iter
    (fun (bench : Suite.bench) ->
      let r = run_source_ok bench.source in
      let plain = Foray_spm.Reuse.candidates r.model in
      let fused = Foray_spm.Reuse.candidates ~fuse:true r.model in
      let sp = Foray_spm.Dse.select_optimal plain ~spm_bytes:1024 in
      let sf = Foray_spm.Dse.select_optimal fused ~spm_bytes:1024 in
      Tablefmt.row t
        [
          bench.name;
          string_of_int (List.length (Foray_spm.Reuse.by_ref plain));
          string_of_int (List.length (Foray_spm.Reuse.by_ref fused));
          Printf.sprintf "%.1f%%" sp.saving_pct;
          Printf.sprintf "%.1f%%" sf.saving_pct;
        ])
    Suite.all;
  Buffer.add_string b (Tablefmt.render t)

let model_fidelity b =
  bsection b "Model fidelity: replaying the trace against the model";
  let t =
    Tablefmt.create
      ~title:"Prediction accuracy of extracted models (covered accesses)"
      [ "Benchmark"; "covered"; "uncovered"; "exact"; "accuracy" ]
  in
  List.iter
    (fun (bench : Suite.bench) ->
      let prog = Minic.Parser.program bench.source in
      let r, trace = run_offline_ok prog in
      let rep = Validate.replay r.model trace in
      let exact =
        List.fold_left (fun a (rr : Validate.ref_report) -> a + rr.exact) 0
          rep.refs
      in
      Tablefmt.row t
        [
          bench.name;
          string_of_int rep.covered;
          string_of_int rep.uncovered;
          string_of_int exact;
          Printf.sprintf "%.2f%%" (100.0 *. Validate.overall rep);
        ])
    Suite.all;
  Buffer.add_string b (Tablefmt.render t)

let input_dependence b =
  bsection b
    "Future work (paper section 6): model dependence on profiling input";
  List.iter
    (fun name ->
      let bench = Option.get (Suite.find name) in
      let prog = Minic.Parser.program bench.source in
      let rep = Stability.study ~seeds:[ 1; 42; 1337 ] prog in
      Printf.bprintf b "%s: %s" name (Stability.to_string rep))
    [ "jpeg"; "lame"; "gsm"; "adpcm" ]

let ablation_online b =
  bsection b "Ablation: online vs offline trace analysis (constant-space claim)";
  let t =
    Tablefmt.create ~title:"Same model, with and without storing the trace"
      [ "Benchmark"; "events"; "online s"; "offline s"; "models equal" ]
  in
  List.iter
    (fun name ->
      let bench = Option.get (Suite.find name) in
      let prog = Minic.Parser.program bench.source in
      let t0 = now () in
      let online = run_ok prog in
      let t1 = now () in
      let offline, trace = run_offline_ok prog in
      let t2 = now () in
      Tablefmt.row t
        [
          name;
          string_of_int (List.length trace);
          Printf.sprintf "%.2f" (t1 -. t0);
          Printf.sprintf "%.2f" (t2 -. t1);
          string_of_bool (Model.to_c online.model = Model.to_c offline.model);
        ])
    [ "adpcm"; "gsm"; "fft" ];
  Buffer.add_string b (Tablefmt.render t)

let scaling b =
  bsection b "Scaling: analysis cost vs trace length (linear-time claim)";
  let t =
    Tablefmt.create ~title:"Algorithm 2+3 over synthetic nested-loop traces"
      [ "events"; "seconds"; "Mev/s" ]
  in
  List.iter
    (fun outer ->
      let tree = Looptree.create () in
      let sink = Looptree.sink tree in
      let ck loop kind = Foray_trace.Event.Checkpoint { loop; kind } in
      let t0 = now () in
      let events = ref 0 in
      let push e = incr events; sink e in
      push (ck 1 Foray_trace.Event.Loop_enter);
      for i = 0 to outer - 1 do
        push (ck 1 Foray_trace.Event.Body_enter);
        push (ck 2 Foray_trace.Event.Loop_enter);
        for j = 0 to 31 do
          push (ck 2 Foray_trace.Event.Body_enter);
          push
            (Foray_trace.Event.Access
               { site = 7; addr = 4096 + (4 * j) + (128 * i); write = false;
                 sys = false; width = 4 });
          push (ck 2 Foray_trace.Event.Body_exit)
        done;
        push (ck 2 Foray_trace.Event.Loop_exit);
        push (ck 1 Foray_trace.Event.Body_exit)
      done;
      push (ck 1 Foray_trace.Event.Loop_exit);
      let dt = now () -. t0 in
      Tablefmt.row t
        [
          string_of_int !events;
          Printf.sprintf "%.3f" dt;
          (if dt > 0.0 then
             Printf.sprintf "%.1f" (float_of_int !events /. dt /. 1e6)
           else "-");
        ])
    [ 1_000; 10_000; 100_000; 200_000 ];
  Buffer.add_string b (Tablefmt.render t);
  Buffer.add_string b
    "(near-flat throughput across two orders of magnitude: linear time; the\n\
     walker state is the loop tree plus per-reference footprint intervals,\n\
     independent of the trace length)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks (complexity claims of Section 4)           *)
(* ------------------------------------------------------------------ *)

let microbench b =
  bsection b "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let witness = Toolkit.Instance.monotonic_clock in
  let run_one (test : Test.t) =
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
    List.iter
      (fun elt ->
        let bench = Benchmark.run cfg [ witness ] elt in
        let ols =
          Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |]
        in
        let est = Analyze.one ols witness bench in
        match Analyze.OLS.estimates est with
        | Some [ t ] ->
            Printf.bprintf b "  %-38s %12.1f ns/op\n" (Test.Elt.name elt) t
        | _ -> Printf.bprintf b "  %-38s (no estimate)\n" (Test.Elt.name elt))
      (Test.elements test)
  in
  (* Algorithm 3: one observation *)
  let aff = Affine.create ~site:1 ~depth:3 in
  let iters = [| 0; 0; 0 |] in
  let k = ref 0 in
  run_one
    (Test.make ~name:"affine.observe (algorithm 3 step)"
       (Staged.stage (fun () ->
            incr k;
            iters.(0) <- !k land 15;
            iters.(1) <- (!k lsr 4) land 15;
            iters.(2) <- !k lsr 8;
            Affine.observe aff ~iters ~addr:(1000 + (4 * !k)))));
  (* Algorithm 2: one trace event through the walker *)
  let tree = Looptree.create () in
  let sink = Looptree.sink tree in
  Looptree.sink tree (Checkpoint { loop = 1; kind = Foray_trace.Event.Loop_enter });
  Looptree.sink tree (Checkpoint { loop = 1; kind = Foray_trace.Event.Body_enter });
  let j = ref 0 in
  run_one
    (Test.make ~name:"looptree.sink (access event)"
       (Staged.stage (fun () ->
            incr j;
            sink
              (Access
                 { site = 42; addr = 5000 + (4 * !j); write = false;
                   sys = false; width = 4 }))));
  (* trace serialization *)
  let line = "Instr: 4002a0 addr: 7fff5934 wr 4" in
  run_one
    (Test.make ~name:"event.of_line (figure 4c record)"
       (Staged.stage (fun () -> ignore (Foray_trace.Event.of_line line))));
  (* interval set *)
  let base = Foray_util.Iset.of_intervals [ (0, 64); (128, 256); (1024, 4096) ] in
  let i = ref 0 in
  run_one
    (Test.make ~name:"iset.add_range"
       (Staged.stage (fun () ->
            incr i;
            ignore
              (Foray_util.Iset.add_range (!i land 8191) ((!i land 8191) + 4)
                 base))));
  (* end-to-end simulation+analysis throughput on the smallest benchmark *)
  let adpcm = Minic.Parser.program (Option.get (Suite.find "adpcm")).source in
  run_one
    (Test.make ~name:"pipeline.run adpcm (end to end)"
       (Staged.stage (fun () -> ignore (run_ok adpcm))));
  (* knapsack on a real candidate set *)
  let gsm = run_source_ok (Option.get (Suite.find "gsm")).source in
  let cands = Foray_spm.Reuse.candidates gsm.model in
  run_one
    (Test.make ~name:"dse.select_optimal gsm@4KiB"
       (Staged.stage (fun () ->
            ignore (Foray_spm.Dse.select_optimal cands ~spm_bytes:4096))))

(* ------------------------------------------------------------------ *)
(* Perf-regression measurements (BENCH_pipeline.json)                  *)
(* ------------------------------------------------------------------ *)

type pipeline_perf = {
  pname : string;
  events : int;
  steps : int;
  seconds : float;
  degraded : bool;  (** the run hit a simulator budget and stopped early *)
}

(* One timed simulate-and-analyze run: the interpreter feeding the loop
   tree, the per-site statistics and an event counter, exactly the online
   pipeline of Algorithm 1. *)
let measure_pipeline (bench : Suite.bench) =
  let prog = Minic.Parser.program bench.source in
  Minic.Sema.check_exn prog;
  let instrumented = Foray_instrument.Annotate.program prog in
  let tree = Looptree.create () in
  let tstats = Foray_trace.Tstats.create () in
  let events = ref 0 in
  let analyze =
    Foray_trace.Event.tee (Looptree.sink tree)
      (Foray_trace.Tstats.sink tstats)
  in
  let sink e = incr events; analyze e in
  let t0 = now () in
  let sim = Minic_sim.Interp.run instrumented ~sink in
  let seconds = now () -. t0 in
  ignore (Model.of_tree tree);
  {
    pname = bench.name;
    events = !events;
    steps = sim.steps;
    seconds;
    degraded = sim.stopped <> Minic_sim.Interp.Completed;
  }

type curve_point = {
  dp_domains : int;
  dp_seconds : float;
  dp_speedup : float;  (** vs the sequential in-memory walk *)
}

type shard_perf = {
  sname : string;
  sevents : int;
  shard_count : int;
  sjobs : int;  (** domains the sharded pass actually used *)
  seq_seconds : float;
  shard_seconds : float;
  merge_seconds : float;
  curve : curve_point list;  (** v2 mapped analysis at 1/2/4 domains *)
  v1_bytes : int;
  v2_bytes : int;
  v1_read_eps : float;  (** v1 channel decode, events/s, null sink *)
  v2_read_eps : float;  (** v2 mapped decode, events/s, null sink *)
  emit_eps : float;  (** v2 frame encoder, events/s *)
}

(* Sharded-analysis measurement on the largest trace in the suite: the
   stored-trace analysis run once sequentially and once split over 4
   domains, models compared byte-for-byte. Merge cost comes from the
   pipeline.shard_merge timer, so metrics collection is switched on just
   for the sharded pass (and read back before measure_interp resets it).
   Schema 4 adds the FORAYTR2 wire measurements on the same trace: file
   sizes, raw decode rates for both formats, frame-encoder throughput,
   and the mapped sharded analysis at 1, 2 and 4 domains. *)
let measure_shards (pipelines : pipeline_perf list) =
  let largest =
    List.fold_left
      (fun (acc : pipeline_perf) p -> if p.events > acc.events then p else acc)
      (List.hd pipelines) (List.tl pipelines)
  in
  let bench = Option.get (Suite.find largest.pname) in
  let prog = Minic.Parser.program bench.source in
  Minic.Sema.check_exn prog;
  let instrumented = Foray_instrument.Annotate.program prog in
  let buf = ref [] in
  let _ =
    Minic_sim.Interp.run instrumented ~sink:(fun e -> buf := e :: !buf)
  in
  let events = Array.of_list (List.rev !buf) in
  let loop_kinds = Foray_instrument.Annotate.loop_table prog in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  let seq_model, seq_seconds =
    time (fun () ->
        let tree, _ = Pipeline.analyze_events events in
        Model.to_c (Model.of_tree ~loop_kinds tree))
  in
  Obs.reset ();
  Obs.set_enabled true;
  let shard_model, shard_seconds =
    time (fun () ->
        let tree, _ = Pipeline.analyze_events ~shards:4 events in
        Model.to_c (Model.of_tree ~loop_kinds tree))
  in
  Obs.set_enabled false;
  let merge_seconds =
    Option.value ~default:0.0 (Obs.timer_seconds "pipeline.shard_merge")
  in
  if not (String.equal seq_model shard_model) then
    failwith "measure_shards: sharded model diverged from the sequential one";
  (* FORAYTR2 wire measurements on the same trace. Decode rates are
     best-of-3 on a null sink, which isolates the readers from analysis. *)
  let module Tracefile = Foray_trace.Tracefile in
  let nf = float_of_int (Array.length events) in
  let ev_list = Array.to_list events in
  let v1_path = Filename.temp_file "foraybench" ".trace" in
  let v2_path = Filename.temp_file "foraybench" ".trace2" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ v1_path; v2_path ])
    (fun () ->
      Tracefile.save ~format:Tracefile.Binary v1_path ev_list;
      let (), emit_seconds =
        time (fun () -> Tracefile.save ~format:Tracefile.Binary2 v2_path ev_list)
      in
      let v1_bytes = (Unix.stat v1_path).Unix.st_size in
      let v2_bytes = (Unix.stat v2_path).Unix.st_size in
      let best_of n f =
        let best = ref infinity in
        for _ = 1 to n do
          let (), dt = time f in
          if dt < !best then best := dt
        done;
        !best
      in
      let v1_read_s =
        best_of 3 (fun () -> Tracefile.iter v1_path Foray_trace.Event.null_sink)
      in
      let m = Tracefile.map v2_path in
      let v2_read_s =
        best_of 3 (fun () -> Tracefile.iter_mapped m Foray_trace.Event.null_sink)
      in
      let eps dt = if dt > 0.0 then nf /. dt else 0.0 in
      let curve =
        List.map
          (fun d ->
            let model, secs =
              time (fun () ->
                  let tree, _ = Pipeline.analyze_mapped ~shards:4 ~jobs:d m in
                  Model.to_c (Model.of_tree ~loop_kinds tree))
            in
            if not (String.equal seq_model model) then
              failwith
                "measure_shards: v2 mapped model diverged from the sequential \
                 one";
            { dp_domains = d; dp_seconds = secs;
              dp_speedup = seq_seconds /. secs })
          [ 1; 2; 4 ]
      in
      {
        sname = largest.pname;
        sevents = Array.length events;
        shard_count = 4;
        sjobs = min 4 (Parallel.default_jobs ());
        seq_seconds;
        shard_seconds;
        merge_seconds;
        curve;
        v1_bytes;
        v2_bytes;
        v1_read_eps = eps v1_read_s;
        v2_read_eps = eps v2_read_s;
        emit_eps = eps emit_seconds;
      })

(* Interpreter microbenchmark on the jpeg analogue, resolver on and off:
   steps per second with a null sink isolates the simulator itself. A
   third pass repeats the resolved configuration with observability
   collection on, which is how the "<2% overhead" budget of the metrics
   layer is tracked across PRs. *)
let measure_interp ~reps =
  let bench = Option.get (Suite.find "jpeg") in
  let prog = Minic.Parser.program bench.source in
  Minic.Sema.check_exn prog;
  let instrumented = Foray_instrument.Annotate.program prog in
  let best config =
    let _ =
      Minic_sim.Interp.run ~config instrumented
        ~sink:Foray_trace.Event.null_sink
    in
    let best = ref 0.0 in
    for _ = 1 to reps do
      let t0 = now () in
      let r =
        Minic_sim.Interp.run ~config instrumented
          ~sink:Foray_trace.Event.null_sink
      in
      let dt = now () -. t0 in
      let sps = float_of_int r.steps /. dt in
      if sps > !best then best := sps
    done;
    !best
  in
  let resolved = best Minic_sim.Interp.default_config in
  let unresolved =
    best { Minic_sim.Interp.default_config with resolve = false }
  in
  Obs.reset ();
  Obs.set_enabled true;
  let with_metrics = best Minic_sim.Interp.default_config in
  Obs.set_enabled false;
  (* A fourth pass with span tracing on tracks the loop-span cost the same
     way; the ring keeps only the tail, which is all the overhead needs. *)
  let span_was = Span.enabled () in
  Span.set_enabled true;
  let with_tracing = best Minic_sim.Interp.default_config in
  Span.set_enabled span_was;
  (resolved, unresolved, with_metrics, with_tracing)

type spm_perf = {
  spname : string;  (** benchmark of the convergence measurement *)
  sp_bytes : int;
  sp_proposals : int;
  sp_wall_s : float;
  sp_pps : float;  (** proposals per second, serial ensemble *)
  sp_gap_pct : float;  (** energy gap vs select_optimal *)
  sp_within1_proposals : int;  (** single-chain proposals to within 1% *)
  sp_within1_s : float;  (** the same point on the wall clock *)
  sp_speedup_jobs : int;
  sp_speedup : float;  (** ensemble wall-clock, jobs=1 / jobs=N *)
  fz_clusters : int;  (** fusable clusters of the showcase *)
  fz_configs : float;  (** 2^clusters fusion configurations *)
  fz_deadline_ms : int;
  fz_proposals : int;
  fz_stopped : string;
  fz_saving_pct : float;
  fz_wall_s : float;
}

(* K disjoint 3-tap stencil loops: every loop contributes one fusable
   cluster, so the joint fusion x placement space has 2^K configurations
   per placement — the regime select_optimal cannot enumerate. *)
let stencil_source k =
  let b = Buffer.create 1024 in
  for a = 0 to k - 1 do
    Printf.bprintf b "int A%d[256];\n" a
  done;
  Buffer.add_string b "int s;\nint main() {\n  int i;\n";
  for a = 0 to k - 1 do
    Printf.bprintf b
      "  for (i = 0; i < 253; i++) { s += A%d[i] + A%d[i + 1] + A%d[i + 2]; \
       }\n"
      a a a
  done;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

(* Schema 7: the stochastic-DSE record. Three measurements on the
   jpeg@4KiB candidate space — serial throughput and optimality gap of
   the seeded default search, the single-chain anytime curve's
   time-to-within-1%-of-optimal, and the restart-ensemble wall-clock
   speedup (jobs=1 vs jobs=N; determinism makes the results comparable
   by construction, and we fail hard if they diverge) — plus the fusion
   showcase: a 2^16-configuration joint space no exhaustive enumeration
   can touch, answered anytime under a deadline. *)
let measure_spm () =
  let module St = Foray_spm.Stochastic in
  let bench = Option.get (Suite.find "jpeg") in
  let r = run_source_ok bench.source in
  let cands = Foray_spm.Reuse.candidates r.model in
  let spm_bytes = 4096 in
  let opt = (Foray_spm.Dse.select_optimal cands ~spm_bytes).energy_opt in
  let p = St.of_candidates cands in
  let serial = St.search p ~spm_bytes St.default_config in
  let pps =
    if serial.wall_s > 0.0 then
      float_of_int serial.proposals /. serial.wall_s
    else 0.0
  in
  let gap_pct =
    if opt > 0.0 then 100.0 *. (serial.cost -. opt) /. opt else 0.0
  in
  (* the anytime curve on a single chain, so trace indices map linearly
     onto the wall clock *)
  let one =
    St.search p ~spm_bytes { St.default_config with restarts = 1 }
  in
  let bar = (opt *. 1.01) +. 1e-9 in
  let within1 =
    List.fold_left
      (fun acc (k, c) ->
        match acc with Some _ -> acc | None -> if c <= bar then Some k else None)
      None one.trace
  in
  let within1_proposals = Option.value ~default:(-1) within1 in
  let within1_s =
    match within1 with
    | Some k when one.chain_proposals > 0 ->
        one.wall_s *. float_of_int k /. float_of_int one.chain_proposals
    | _ -> -1.0
  in
  (* ensemble speedup on a budget big enough to amortize the pool: the
     default 20k proposals finish in single-digit milliseconds *)
  let speedup_jobs = max 2 (min 4 (Parallel.default_jobs ())) in
  let big =
    { St.default_config with budget = (if !quick then 1_000_000 else 4_000_000) }
  in
  let ser_big = St.search p ~spm_bytes big in
  let par_big = St.search p ~spm_bytes { big with jobs = speedup_jobs } in
  if par_big.cost <> ser_big.cost then
    failwith "measure_spm: ensemble result depends on jobs";
  let speedup =
    if par_big.wall_s > 0.0 then ser_big.wall_s /. par_big.wall_s else 0.0
  in
  (* the fusion showcase *)
  let k = 16 in
  let rs = run_source_ok (stencil_source k) in
  let fp = St.of_model rs.model in
  let deadline_ms = if !quick then 500 else 5000 in
  let fz =
    St.search fp ~spm_bytes
      {
        St.default_config with
        budget = 1_000_000_000;
        deadline_ms = Some deadline_ms;
      }
  in
  {
    spname = bench.name;
    sp_bytes = spm_bytes;
    sp_proposals = serial.proposals;
    sp_wall_s = serial.wall_s;
    sp_pps = pps;
    sp_gap_pct = gap_pct;
    sp_within1_proposals = within1_proposals;
    sp_within1_s = within1_s;
    sp_speedup_jobs = speedup_jobs;
    sp_speedup = speedup;
    fz_clusters = fz.fusable_clusters;
    fz_configs = 2.0 ** float_of_int fz.fusable_clusters;
    fz_deadline_ms = deadline_ms;
    fz_proposals = fz.proposals;
    fz_stopped = St.stop_name fz.stopped;
    fz_saving_pct =
      (if fz.base > 0.0 then 100.0 *. (fz.base -. fz.cost) /. fz.base
       else 0.0);
    fz_wall_s = fz.wall_s;
  }

(* Serving measurement (schema 6): a private forayd on a temp socket
   driven by the load generator — 4 concurrent clients over a mixed
   analyze/extract workload, plus the cold/warm cache probe on jpeg (the
   largest benchmark, so the cached-speedup headline is the one that
   matters). Runs after measure_interp's Obs.reset, so the hit/miss
   totals read back over the wire start from zero. *)
let measure_serve () =
  let module Serve = Foray_serve.Serve in
  let path = Serve.temp_socket_path () in
  let srv = Serve.start (Serve.default_config ~socket_path:path) in
  Fun.protect
    ~finally:(fun () ->
      (try Serve.Client.shutdown path with _ -> ());
      Serve.wait srv;
      Obs.set_enabled false)
    (fun () ->
      Serve.bench ~socket:path ~clients:4
        ~requests:(if !quick then 5 else 25)
        ~programs:[ "adpcm"; "gsm"; "fft"; "fig4a" ]
        ~cold_program:"jpeg")

type verify_perf = {
  vname : string;
  v_refs : int;
  v_proved : int;
  v_diverged : int;
  v_unseen : int;
  v_covered : int;
  v_events : int;
  v_wall_s : float;
  v_eps : float;  (** accesses checked per second of replay *)
}

(* Verification measurement (schema 8): replay each benchmark's extracted
   model against its own recorded stream (Foray_verify) and time the
   replay walk alone. Every reference must prove — a divergence here
   means the extractor and the verifier disagree about the pipeline's own
   ground truth, so it fails the harness rather than landing in the
   record. *)
let measure_verify () =
  let module Verify = Foray_verify.Verify in
  List.map
    (fun (bench : Suite.bench) ->
      let prog = Minic.Parser.program bench.source in
      Minic.Sema.check_exn prog;
      let r, trace = run_offline_ok prog in
      let t0 = now () in
      let rep = Verify.verify r.model trace in
      let wall = now () -. t0 in
      if Verify.diverged rep > 0 then
        failwith
          (Printf.sprintf "measure_verify: %s diverged on its own trace"
             bench.name);
      {
        vname = bench.name;
        v_refs = List.length rep.refs;
        v_proved = Verify.proved rep;
        v_diverged = Verify.diverged rep;
        v_unseen = Verify.unseen rep;
        v_covered = rep.covered;
        v_events = rep.events;
        v_wall_s = wall;
        v_eps =
          (if wall > 0.0 then float_of_int rep.events /. wall else 0.0);
      })
    Suite.all

let write_json ~path ~section_times ~pipelines ~shard ~interp ~serve ~spm
    ~verify ~total =
  let resolved, unresolved, with_metrics, with_tracing = interp in
  let b = Buffer.create 4096 in
  let add fmt = Printf.bprintf b fmt in
  add "{\n";
  add "  \"schema\": 8,\n";
  add "  \"meta\": {\n";
  add "    \"schema_version\": 8,\n";
  add "    \"generated_by\": \"bench/main.exe --json\",\n";
  add "    \"benchmark_set\": [%s],\n"
    (String.concat ", "
       (List.map (fun (b : Suite.bench) -> Printf.sprintf "%S" b.name)
          Suite.all));
  add "    \"jobs\": %d,\n" !jobs;
  add "    \"quick\": %b,\n" !quick;
  add "    \"obs_overhead_pct\": %.2f,\n"
    (100.0 *. (resolved -. with_metrics) /. resolved);
  add "    \"trace_overhead_pct\": %.2f,\n"
    (100.0 *. (resolved -. with_tracing) /. resolved);
  add "    \"degraded_runs\": %d\n"
    (List.length (List.filter (fun p -> p.degraded) pipelines));
  add "  },\n";
  add "  \"generated_by\": \"bench/main.exe --json\",\n";
  add "  \"jobs\": %d,\n" !jobs;
  add "  \"quick\": %b,\n" !quick;
  add "  \"interp\": {\n";
  add "    \"benchmark\": \"jpeg\",\n";
  add "    \"steps_per_sec\": %.0f,\n" resolved;
  add "    \"steps_per_sec_unresolved\": %.0f,\n" unresolved;
  add "    \"steps_per_sec_metrics\": %.0f,\n" with_metrics;
  add "    \"steps_per_sec_tracing\": %.0f,\n" with_tracing;
  add "    \"metrics_overhead_pct\": %.2f,\n"
    (100.0 *. (resolved -. with_metrics) /. resolved);
  add "    \"tracing_overhead_pct\": %.2f,\n"
    (100.0 *. (resolved -. with_tracing) /. resolved);
  add "    \"resolver_speedup\": %.2f\n" (resolved /. unresolved);
  add "  },\n";
  (* Schema 3: the sharded-analysis record — sequential vs 4-domain
     analysis of the largest stored trace, plus the merge cost. Schema 4
     adds the v2 mapped-analysis domain curve at a fixed 4 shards. *)
  add "  \"shard\": {\n";
  add "    \"name\": %S,\n" shard.sname;
  add "    \"events\": %d,\n" shard.sevents;
  add "    \"shards\": %d,\n" shard.shard_count;
  add "    \"domains\": %d,\n" shard.sjobs;
  add "    \"seq_seconds\": %.4f,\n" shard.seq_seconds;
  add "    \"shard_seconds\": %.4f,\n" shard.shard_seconds;
  add "    \"merge_seconds\": %.4f,\n" shard.merge_seconds;
  add "    \"speedup\": %.2f,\n" (shard.seq_seconds /. shard.shard_seconds);
  add "    \"curve\": [\n";
  List.iteri
    (fun i (p : curve_point) ->
      add
        "      {\"domains\": %d, \"seconds\": %.4f, \"speedup\": %.2f}%s\n"
        p.dp_domains p.dp_seconds p.dp_speedup
        (if i = List.length shard.curve - 1 then "" else ","))
    shard.curve;
  add "    ]\n";
  add "  },\n";
  (* Schema 4: FORAYTR2 wire numbers on the same trace — file sizes,
     raw decode throughput of both formats, frame-encoder throughput. *)
  add "  \"trace_v2\": {\n";
  add "    \"name\": %S,\n" shard.sname;
  add "    \"events\": %d,\n" shard.sevents;
  add "    \"v1_bytes\": %d,\n" shard.v1_bytes;
  add "    \"v2_bytes\": %d,\n" shard.v2_bytes;
  add "    \"v1_read_events_per_sec\": %.0f,\n" shard.v1_read_eps;
  add "    \"v2_read_events_per_sec\": %.0f,\n" shard.v2_read_eps;
  add "    \"read_speedup\": %.2f,\n"
    (if shard.v1_read_eps > 0.0 then shard.v2_read_eps /. shard.v1_read_eps
     else 0.0);
  add "    \"emit_events_per_sec\": %.0f\n" shard.emit_eps;
  add "  },\n";
  (* Schema 5: the forayd serving record — concurrent mixed traffic
     against the daemon, latency percentiles, cache totals and the
     cold-vs-warm (cached) speedup on jpeg. *)
  add "  \"serve\": %s,\n" (Foray_serve.Serve.bench_result_to_json serve);
  (* Schema 7: the stochastic-DSE record — serial throughput and
     optimality gap of the seeded default search on jpeg@4KiB, the
     single-chain time-to-within-1%-of-optimal, the restart-ensemble
     speedup, and the 2^16-configuration fusion showcase answered
     anytime under a deadline. *)
  add "  \"spm\": {\n";
  add "    \"benchmark\": %S,\n" spm.spname;
  add "    \"spm_bytes\": %d,\n" spm.sp_bytes;
  add "    \"proposals\": %d,\n" spm.sp_proposals;
  add "    \"wall_s\": %.4f,\n" spm.sp_wall_s;
  add "    \"proposals_per_sec\": %.0f,\n" spm.sp_pps;
  add "    \"gap_vs_optimal_pct\": %.4f,\n" spm.sp_gap_pct;
  add "    \"within_1pct_proposals\": %d,\n" spm.sp_within1_proposals;
  add "    \"within_1pct_s\": %.6f,\n" spm.sp_within1_s;
  add "    \"ensemble_jobs\": %d,\n" spm.sp_speedup_jobs;
  add "    \"ensemble_speedup\": %.2f,\n" spm.sp_speedup;
  add "    \"fusion_showcase\": {\n";
  add "      \"fusable_clusters\": %d,\n" spm.fz_clusters;
  add "      \"fusion_configs\": %.0f,\n" spm.fz_configs;
  add "      \"deadline_ms\": %d,\n" spm.fz_deadline_ms;
  add "      \"proposals\": %d,\n" spm.fz_proposals;
  add "      \"stopped\": %S,\n" spm.fz_stopped;
  add "      \"saving_pct\": %.2f,\n" spm.fz_saving_pct;
  add "      \"wall_s\": %.4f\n" spm.fz_wall_s;
  add "    }\n";
  add "  },\n";
  (* Schema 8: the verification record — per-benchmark model-replay
     verdicts (every reference must prove on its own trace) and the
     replay throughput. *)
  add "  \"verify\": [\n";
  List.iteri
    (fun i (v : verify_perf) ->
      add
        "    {\"name\": %S, \"refs\": %d, \"proved\": %d, \"diverged\": \
         %d, \"unseen\": %d, \"covered\": %d, \"events\": %d, \"wall_s\": \
         %.4f, \"events_checked_per_sec\": %.0f}%s\n"
        v.vname v.v_refs v.v_proved v.v_diverged v.v_unseen v.v_covered
        v.v_events v.v_wall_s v.v_eps
        (if i = List.length verify - 1 then "" else ","))
    verify;
  add "  ],\n";
  (* Obs.to_json is itself a JSON object, captured during the
     metrics-enabled interpreter pass above. *)
  add "  \"metrics\": %s,\n" (Obs.to_json ());
  add "  \"pipelines\": [\n";
  List.iteri
    (fun i p ->
      add
        "    {\"name\": %S, \"events\": %d, \"steps\": %d, \"seconds\": \
         %.4f, \"events_per_sec\": %.0f, \"degraded\": %b}%s\n"
        p.pname p.events p.steps p.seconds
        (float_of_int p.events /. p.seconds)
        p.degraded
        (if i = List.length pipelines - 1 then "" else ","))
    pipelines;
  add "  ],\n";
  add "  \"sections\": [\n";
  List.iteri
    (fun i (name, dt) ->
      add "    {\"name\": %S, \"seconds\": %.3f}%s\n" name dt
        (if i = List.length section_times - 1 then "" else ","))
    section_times;
  add "  ],\n";
  add "  \"wall_clock_total_sec\": %.3f\n" total;
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse
    [
      ("-j", Arg.Set_int jobs,
       "N  Fan independent sections out over N domains (default: \
        recommended domain count; 1 = serial)");
      ("--json", Arg.Set json,
       " Write the perf-regression record BENCH_pipeline.json");
      ("--json-file", Arg.Set_string json_file,
       "PATH  Destination of the JSON record (default BENCH_pipeline.json)");
      ("--quick", Arg.Set quick,
       " CI-sized run: tables + perf measurements only, <60s");
      ("--trace-out", Arg.Set_string trace_out,
       "FILE  Record spans for the whole bench run and write the Chrome \
        trace (or .folded stacks) to FILE");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dune exec bench/main.exe -- [-j N] [--json] [--quick] [--trace-out FILE]";
  Span.setup_env ();
  if !trace_out <> "" then begin
    Span.reset ();
    Span.set_enabled true
  end;
  let t0 = now () in
  let sections =
    if !quick then
      [ ("tables", tables); ("figure4", figure4); ("scaling", scaling) ]
    else
      [
        ("tables", tables);
        ("figure2", figure2);
        ("figure4", figure4);
        ("figure7", figure7);
        ("figure9", figure9);
        ("spm_sweep", spm_sweep);
        ("spm_vs_cache", spm_vs_cache);
        ("ablation_thresholds", ablation_thresholds);
        ("ablation_partial", ablation_partial);
        ("ablation_dse", ablation_dse);
        ("ablation_fusion", ablation_fusion);
        ("model_fidelity", model_fidelity);
        ("input_dependence", input_dependence);
        ("ablation_online", ablation_online);
        ("scaling", scaling);
      ]
  in
  let rendered =
    Parallel.run ~jobs:!jobs
      (List.map
         (fun (name, f) () ->
           let b = Buffer.create 4096 in
           let s0 = now () in
           f b;
           (name, Buffer.contents b, now () -. s0))
         sections)
  in
  List.iter (fun (_, out, _) -> print_string out) rendered;
  (* Perf measurements run serially, after the pool is idle, so domain
     contention never skews them. *)
  if !json then begin
    let pipelines =
      List.map measure_pipeline
        (if !quick then
           List.filter (fun (b : Suite.bench) -> b.name <> "lame") Suite.all
         else Suite.all)
    in
    let shard = measure_shards pipelines in
    let interp = measure_interp ~reps:(if !quick then 3 else 5) in
    let serve = measure_serve () in
    let spm = measure_spm () in
    let verify = measure_verify () in
    let section_times = List.map (fun (n, _, dt) -> (n, dt)) rendered in
    write_json ~path:!json_file ~section_times ~pipelines ~shard ~interp
      ~serve ~spm ~verify ~total:(now () -. t0)
  end;
  if not !quick then begin
    let b = Buffer.create 256 in
    microbench b;
    print_string (Buffer.contents b)
  end;
  if !trace_out <> "" then begin
    Span.set_enabled false;
    Span.write !trace_out;
    Printf.eprintf "trace written to %s (%d span(s), %d dropped)\n%!"
      !trace_out (Span.recorded ()) (Span.dropped ())
  end;
  Printf.printf "\ntotal bench time: %.1fs\n" (now () -. t0)
