(* foraygen: command-line front end to the FORAY-GEN flow.

   Subcommands:
     list      - benchmarks and figure programs available by name
     extract   - run the pipeline, print the FORAY model (and hints)
     annotate  - print the checkpoint-instrumented program (Figure 4(b))
     trace     - print, save, convert or import the profile trace (Fig 4(c))
     tables    - print Tables I / II / III and the headline comparison
     spm       - reuse candidates, DSE sweep and transformed model
     verify    - per-reference model-replay verdicts with counterexamples
     metrics   - run the full flow with counters on, print/check them
     explain   - per-reference Algorithm-3 inference timelines
     tracecheck - validate an exported Chrome trace file
     faults    - fault-injection campaign over a program's trace
     serve     - forayd: concurrent analysis daemon with a model cache
     serve-bench - load-generate against forayd, report latency/cache
     top       - live dashboard over a running forayd's metrics op

   Exit codes follow the documented contract (README "Exit and error
   codes"): 0 success, 3 success-but-degraded, 10-15 the typed taxonomy
   of Foray_core.Error, anything else cmdliner usage errors. *)

open Cmdliner
module Obs = Foray_obs.Obs
module Span = Foray_obs.Span
module Ferr = Foray_core.Error

let load_source = Foray_suite.Suite.load

(* Exit code for runs that finished but lost something (budget stop,
   salvaged trace): distinct from both success and the error taxonomy so
   scripts can branch on it. *)
let exit_degraded = 3

let fail_error ?(json = false) e =
  if json then prerr_endline (Ferr.to_json e)
  else Printf.eprintf "foraygen: %s\n" (Ferr.to_string e);
  Ferr.exit_code e

(* Run a subcommand body; exceptions the taxonomy recognizes become the
   documented exit codes instead of cmdliner's generic 125 backtrace. *)
let guard ?json f =
  match Ferr.catch f with Ok code -> code | Error e -> fail_error ?json e

(* Map the shortfalls of an otherwise successful run onto the exit-code
   contract: nothing lost -> 0; degraded -> notes on stderr and exit 3;
   degraded under --strict -> the corresponding typed error. *)
let finish_degraded ?(strict = false) ?(json = false) degraded =
  match degraded with
  | [] -> 0
  | d :: _ when strict ->
      fail_error ~json
        (match d with
        | Foray_core.Pipeline.Degraded_budget { budget; limit; spent; _ } ->
            Ferr.Budget_exceeded { budget; limit; spent }
        | Foray_core.Pipeline.Degraded_corrupt { offset; kind; salvaged; _ } ->
            Ferr.Trace_corrupt { offset; kind; events_salvaged = salvaged })
  | ds ->
      List.iter
        (fun d ->
          if json then
            prerr_endline (Foray_core.Pipeline.degradation_to_json d)
          else
            Printf.eprintf "foraygen: %s\n"
              (Foray_core.Pipeline.degradation_to_string d))
        ds;
      exit_degraded

(* A positional PROGRAM argument may actually be a stored trace file;
   recognize both on-disk formats so [extract] can fall back to offline
   analysis (Steps 3-4) of the file. *)
let looks_like_trace path =
  Sys.file_exists path
  && (not (Sys.is_directory path))
  &&
  let head =
    In_channel.with_open_bin path (fun ic ->
        really_input_string ic (min 16 (In_channel.length ic |> Int64.to_int)))
  in
  String.starts_with ~prefix:"FORAYTR1" head
  || String.starts_with ~prefix:"FORAYTR2" head
  || String.starts_with ~prefix:"Checkpoint:" head
  || String.starts_with ~prefix:"Instr:" head

let prog_arg =
  let doc =
    "Program to analyze: a benchmark name (jpeg, lame, susan, fft, gsm, \
     adpcm), a figure name (fig1, fig4a, fig7a, fig7b, fig9) or a MiniC \
     file path."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let nexec_arg =
  let doc = "Step 4 threshold: minimum executions of a reference." in
  Arg.(value & opt int 20 & info [ "nexec" ] ~doc)

let nloc_arg =
  let doc = "Step 4 threshold: minimum distinct locations of a reference." in
  Arg.(value & opt int 10 & info [ "nloc" ] ~doc)

let scalars_arg =
  let doc = "Trace named scalar accesses too (default true)." in
  Arg.(value & opt bool true & info [ "trace-scalars" ] ~doc)

let jobs_arg =
  let doc =
    "Run independent pipeline runs on $(docv) domains (default: the \
     recommended domain count; 1 = serial). Output is identical for any \
     value."
  in
  Arg.(
    value
    & opt int (Foray_util.Parallel.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Cut the stored trace into $(docv) checkpoint-aligned shards and \
     analyze them in parallel on a domain pool, merging the per-shard \
     state. The printed model is byte-identical to a sequential analysis \
     for any shard count."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let shard_jobs_arg =
  let doc =
    "Domains for sharded analysis (default: the shard count, capped at \
     the machine's recommended domain count). Only meaningful together \
     with $(b,--shards)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let metrics_arg =
  let doc =
    "Collect internal counters during the run and write them as JSON to \
     $(docv). FORAY_OBS=1 in the environment enables collection without a \
     dump file; this flag takes precedence for where the dump goes."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Record hierarchical spans during the run and write them to $(docv): \
     Chrome trace-event JSON (load in Perfetto or chrome://tracing), or \
     folded flamegraph stacks when $(docv) ends in .folded. \
     FORAY_TRACE=FILE in the environment does the same for the whole \
     process; this flag takes precedence and resets the span ring first."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

(* Enable span tracing around [f] and export the ring to [path] afterwards,
   even when [f] raises — a crashed run keeps the timeline that led up to
   the crash. Mirrors [with_metrics] below. *)
let with_tracing path f =
  match path with
  | None -> f ()
  | Some path ->
      Span.reset ();
      Span.set_enabled true;
      let finish () =
        Span.set_enabled false;
        Span.write path;
        Printf.eprintf "trace written to %s (%d span(s), %d dropped)\n%!"
          path (Span.recorded ()) (Span.dropped ())
      in
      Fun.protect ~finally:finish f

(* Enable observability collection around [f] and dump the registry to
   [path] afterwards — even if [f] raises, so a crashed run still leaves
   its partial counters behind for inspection. *)
let with_metrics path f =
  match path with
  | None -> f ()
  | Some path ->
      Obs.reset ();
      Obs.set_enabled true;
      let finish () =
        Obs.set_enabled false;
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Obs.to_json ());
            output_char oc '\n');
        Printf.eprintf "metrics written to %s\n%!" path
      in
      Fun.protect ~finally:finish f

let strict_arg =
  let doc =
    "Fail fast with a typed error instead of degrading: corrupt trace \
     records become E_TRACE_CORRUPT and exhausted budgets become E_BUDGET, \
     rather than a partial model with exit code 3."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let json_errors_arg =
  let doc =
    "Print errors and degradation notes as one-line JSON objects on stderr."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let max_steps_arg =
  let doc =
    "Statement budget for the simulation; exhausting it stops the run \
     cleanly and the model covers the prefix seen (exit 3)."
  in
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Wall-clock budget for the simulation, in milliseconds." in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_events_arg =
  let doc = "Budget on trace events emitted (accesses plus checkpoints)." in
  Arg.(
    value & opt (some int) None & info [ "max-trace-events" ] ~docv:"N" ~doc)

let config_of ?max_steps ?deadline_ms ?max_trace_events scalars =
  let d = Minic_sim.Interp.default_config in
  {
    d with
    trace_scalars = scalars;
    max_steps = Option.value max_steps ~default:d.Minic_sim.Interp.max_steps;
    deadline_ms;
    max_trace_events;
  }

(* Simulate a named program into a fresh binary trace file and hand the
   path to [k]; the temporary is removed afterwards. Exercises the whole
   write+read trace path rather than an in-memory sink. *)
let with_simulated_trace ~scalars src k =
  let p = Minic.Parser.program src in
  Minic.Sema.check_exn p;
  let instrumented = Foray_instrument.Annotate.program p in
  let tmp = Filename.temp_file "foraygen" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Foray_trace.Tracefile.with_sink ~format:Foray_trace.Tracefile.Binary tmp
        (fun sink ->
          ignore
            (Minic_sim.Interp.run ~config:(config_of scalars) instrumented
               ~sink));
      k tmp)

let run_pipeline src ~nexec ~nloc ~scalars =
  let thresholds = Foray_core.Filter.{ nexec; nloc } in
  match
    Foray_core.Pipeline.run_source ~config:(config_of scalars) ~thresholds src
  with
  | Ok o -> o.Foray_core.Pipeline.result
  | Error e -> Ferr.raise_error e

(* The degradation note a salvaged-but-damaged read deserves; an empty
   list when the stream came back whole. *)
let salvage_degradations (salvage : Foray_trace.Tracefile.salvage) =
  if salvage.resyncs = 0 && not salvage.truncated_tail then []
  else
    [
      Foray_core.Pipeline.Degraded_corrupt
        {
          offset =
            (match salvage.first_errors with (off, _) :: _ -> off | [] -> -1);
          kind =
            (match salvage.first_errors with
            | (_, k) :: _ -> k
            | [] -> "unknown");
          salvaged = salvage.events;
          resyncs = salvage.resyncs;
          bytes_skipped = salvage.bytes_skipped;
        };
    ]

(* Steps 3-4 on a stored trace file: salvages damaged records by default,
   [strict] turns the first corrupt record into E_TRACE_CORRUPT. With
   [shards > 1] the stream is analyzed in parallel and merged — same
   model, bit for bit. FORAYTR2 files take the zero-copy mapped path
   (Pipeline.analyze_trace decides). *)
let analyze_trace_file ~strict ~json ~nexec ~nloc ?(shards = 1) ?jobs path =
  match Foray_core.Pipeline.analyze_trace ~strict ~shards ?jobs path with
  | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
      fail_error ~json
        (Ferr.Trace_corrupt { offset; kind; events_salvaged = events_before })
  | Ok ((tree, _tstats), salvage) ->
      Foray_core.Looptree.flush_metrics tree;
      let thresholds = Foray_core.Filter.{ nexec; nloc } in
      let model = Foray_core.Model.of_tree ~thresholds tree in
      print_string (Foray_core.Model.to_c model);
      finish_degraded ~json (salvage_degradations salvage)

(* ---- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun (b : Foray_suite.Suite.bench) ->
        Printf.printf "  %-7s %4d lines  %s\n" b.name
          (Foray_suite.Suite.lines b) b.description)
      Foray_suite.Suite.all;
    print_endline "figures:";
    List.iter
      (fun (n, _) -> Printf.printf "  %s\n" n)
      Foray_suite.Figures.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available benchmarks and figure programs")
    Term.(const run $ const ())

(* ---- extract -------------------------------------------------------- *)

let extract_cmd =
  let run prog nexec nloc scalars show_hints metrics trace_out strict json
      max_steps deadline_ms max_events shards jobs =
    guard ~json (fun () ->
        if looks_like_trace prog then
          (* A stored trace: skip simulation and run Steps 3-4 offline,
             salvaging damaged records unless --strict. *)
          with_tracing trace_out (fun () ->
              with_metrics metrics (fun () ->
                  analyze_trace_file ~strict ~json ~nexec ~nloc ~shards ?jobs
                    prog))
        else
          match load_source prog with
          | Error e -> fail_error ~json e
          | Ok src ->
              with_tracing trace_out (fun () ->
                  with_metrics metrics (fun () ->
                      let thresholds = Foray_core.Filter.{ nexec; nloc } in
                      let config =
                        config_of ?max_steps ?deadline_ms
                          ?max_trace_events:max_events scalars
                      in
                      let outcome =
                        if shards <= 1 then
                          Foray_core.Pipeline.run_source ~config ~thresholds
                            src
                        else
                          (* --shards: materialize the trace and analyze it
                             in parallel instead of online. *)
                          match
                            Ferr.catch (fun () -> Minic.Parser.program src)
                          with
                          | Error _ as e -> e
                          | Ok prog ->
                              Result.map fst
                                (Foray_core.Pipeline.run_offline ~config
                                   ~thresholds ~shards ?jobs prog)
                      in
                      match outcome with
                      | Error e -> fail_error ~json e
                      | Ok { result = r; degraded } when strict && degraded <> []
                        ->
                          ignore r;
                          finish_degraded ~strict ~json degraded
                      | Ok { result = r; degraded } ->
                          print_string (Foray_core.Model.to_c r.model);
                          if show_hints then begin
                            print_newline ();
                            print_string
                              (Foray_core.Hints.to_string
                                 (Foray_core.Pipeline.hints r))
                          end;
                          finish_degraded ~json degraded)))
  in
  let hints_arg =
    Arg.(value & flag & info [ "hints" ] ~doc:"Also print duplication hints.")
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Run FORAY-GEN and print the extracted FORAY model")
    Term.(
      const run $ prog_arg $ nexec_arg $ nloc_arg $ scalars_arg $ hints_arg
      $ metrics_arg $ trace_out_arg $ strict_arg $ json_errors_arg
      $ max_steps_arg $ deadline_arg $ max_events_arg $ shards_arg
      $ shard_jobs_arg)

(* ---- annotate ------------------------------------------------------- *)

let annotate_cmd =
  let run prog =
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src ->
            let p = Minic.Parser.program src in
            print_string
              (Minic.Pretty.program (Foray_instrument.Annotate.program p));
            0)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Print the checkpoint-annotated program (Step 1)")
    Term.(const run $ prog_arg)

(* ---- trace ---------------------------------------------------------- *)

let trace_cmd =
  (* Convert an existing trace file to [target] format: read (salvaging if
     damaged), rewrite, report. The v1 -> v2 upgrade path. *)
  let convert_file ~src ~dst ~target =
    if not (Sys.file_exists src) then begin
      Printf.eprintf "foraygen trace --convert: no such trace file: %s\n" src;
      2
    end
    else
    match Foray_trace.Tracefile.read_events src with
    | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
        fail_error
          (Ferr.Trace_corrupt { offset; kind; events_salvaged = events_before })
    | Ok (events, salvage) ->
        let n = ref 0 in
        Foray_trace.Tracefile.with_sink ~format:target dst (fun sink ->
            Array.iter
              (fun e ->
                incr n;
                sink e)
              events);
        Printf.printf "converted %d event(s): %s -> %s\n" !n src dst;
        finish_degraded (salvage_degradations salvage)
  in
  (* Import a foreign simulator log (the paper's plain "site addr kind"
     lines) into the pipeline's event stream: rewrite it at --out in
     --format, or print the normalized text form. Malformed lines are
     resynchronization points unless --strict. *)
  let import_file ~strict ~src ~out ~format ~limit =
    if not (Sys.file_exists src) then begin
      Printf.eprintf "foraygen trace --import: no such log file: %s\n" src;
      2
    end
    else
      match Foray_trace.Import.read ~strict src with
      | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
          fail_error
            (Ferr.Trace_corrupt
               { offset; kind; events_salvaged = events_before })
      | Ok (events, salvage) ->
          (match out with
          | Some dst ->
              Foray_trace.Tracefile.with_sink ~format dst (fun sink ->
                  Array.iter sink events);
              Printf.printf "imported %d event(s): %s -> %s\n"
                (Array.length events) src dst
          | None ->
              Array.iteri
                (fun i e ->
                  if i < limit then
                    print_endline (Foray_trace.Event.to_line e))
                events;
              if Array.length events > limit then
                Printf.printf "... (truncated at %d events)\n" limit);
          finish_degraded (salvage_degradations salvage)
  in
  let run prog limit scalars out format convert import strict metrics =
    guard (fun () ->
        if import then import_file ~strict ~src:prog ~out ~format ~limit
        else
        match convert with
        | Some target -> (
            match out with
            | None ->
                prerr_endline
                  "foraygen trace --convert needs --out FILE for the converted \
                   trace";
                2
            | Some dst -> convert_file ~src:prog ~dst ~target)
        | None -> (
        match load_source prog with
        | Error e -> fail_error e
        | Ok src ->
            with_metrics metrics (fun () ->
            let p = Minic.Parser.program src in
            Minic.Sema.check_exn p;
            let instrumented = Foray_instrument.Annotate.program p in
            match out with
            | Some path ->
                let n = ref 0 in
                Foray_trace.Tracefile.with_sink ~format path (fun sink ->
                    let sink e = incr n; sink e in
                    ignore
                      (Minic_sim.Interp.run ~config:(config_of scalars)
                         instrumented ~sink));
                Printf.printf "wrote %d events to %s\n" !n path;
                0
            | None ->
                let printed = ref 0 in
                let sink e =
                  if !printed < limit then begin
                    print_endline (Foray_trace.Event.to_line e);
                    incr printed
                  end
                in
                let _ =
                  Minic_sim.Interp.run ~config:(config_of scalars) instrumented
                    ~sink
                in
                if !printed >= limit then
                  Printf.printf "... (truncated at %d events)\n" limit;
                0)))
  in
  let limit_arg =
    Arg.(value & opt int 200 & info [ "limit" ] ~doc:"Maximum events to print.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~doc:"Write the full trace to this file instead.")
  in
  let format_conv =
    Arg.enum
      [
        ("text", Foray_trace.Tracefile.Text);
        ("binary", Foray_trace.Tracefile.Binary);
        ("v1", Foray_trace.Tracefile.Binary);
        ("v2", Foray_trace.Tracefile.Binary2);
        ("binary2", Foray_trace.Tracefile.Binary2);
      ]
  in
  let format_arg =
    Arg.(
      value
      & opt format_conv Foray_trace.Tracefile.Text
      & info [ "format" ]
          ~doc:"Trace file format: text, binary (alias v1) or v2.")
  in
  let convert_arg =
    Arg.(
      value
      & opt (some format_conv) None
      & info [ "convert" ] ~docv:"FORMAT"
          ~doc:
            "Treat PROGRAM as an existing trace file and rewrite it to \
             $(docv) (text, binary/v1 or v2) at --out; damaged records are \
             salvaged and reported.")
  in
  let import_arg =
    Arg.(
      value & flag
      & info [ "import" ]
          ~doc:
            "Treat PROGRAM as a foreign simulator log — one access per \
             line, $(i,site addr kind) in hex with optional width and \
             $(i,sys), checkpoint lines as $(i,loop ckind) — and convert \
             it to the pipeline's event stream at --out (in --format) or \
             to stdout. Malformed lines are resynchronization points \
             unless $(b,--strict).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print, save, convert or import the profile trace (Step 2)")
    Term.(
      const run $ prog_arg $ limit_arg $ scalars_arg $ out_arg $ format_arg
      $ convert_arg $ import_arg $ strict_arg $ metrics_arg)

(* ---- analyze (trace file -> model) ---------------------------------- *)

let analyze_cmd =
  let run target nexec nloc scalars metrics trace_out strict json shards jobs =
    guard ~json (fun () ->
        with_tracing trace_out (fun () ->
            with_metrics metrics (fun () ->
                if Sys.file_exists target then
                  analyze_trace_file ~strict ~json ~nexec ~nloc ~shards ?jobs
                    target
                else
                  match load_source target with
                  | Error e -> fail_error ~json e
                  | Ok src ->
                      (* A benchmark or figure name: simulate it to a temporary
                         binary trace first, then analyze that file. *)
                      with_simulated_trace ~scalars src (fun tmp ->
                          analyze_trace_file ~strict ~json ~nexec ~nloc ~shards
                            ?jobs tmp))))
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Trace file (text or binary, auto-detected), or a \
             benchmark/figure name to simulate and analyze in one go. \
             Damaged records are salvaged by resynchronization unless \
             $(b,--strict).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Steps 3-4 on a stored trace file and print the model")
    Term.(
      const run $ path_arg $ nexec_arg $ nloc_arg $ scalars_arg $ metrics_arg
      $ trace_out_arg $ strict_arg $ json_errors_arg $ shards_arg
      $ shard_jobs_arg)

(* ---- tree ------------------------------------------------------------ *)

let tree_cmd =
  let run prog show_all =
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src -> (
            match Foray_core.Pipeline.run_source src with
            | Error e -> fail_error e
            | Ok { result = r; degraded } ->
                print_string
                  (Foray_core.Treedump.render ~loop_kinds:r.loop_kinds
                     ~show_all r.tree);
                finish_degraded degraded))
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Include scalar references (hidden by default).")
  in
  Cmd.v
    (Cmd.info "tree"
       ~doc:"Print the reconstructed dynamic loop tree (Algorithm 2)")
    Term.(const run $ prog_arg $ all_arg)

(* ---- validate --------------------------------------------------------- *)

let validate_cmd =
  let run prog nexec nloc =
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src ->
        let thresholds = Foray_core.Filter.{ nexec; nloc } in
        let prog = Minic.Parser.program src in
        let r, trace =
          match Foray_core.Pipeline.run_offline ~thresholds prog with
          | Ok (o, trace) -> (o.Foray_core.Pipeline.result, trace)
          | Error e -> Ferr.raise_error e
        in
        let rep = Foray_core.Validate.replay r.model trace in
        Printf.printf
          "model covers %d of %d accesses; prediction accuracy %.2f%%\n"
          rep.covered (rep.covered + rep.uncovered)
          (100.0 *. Foray_core.Validate.overall rep);
        List.iter
          (fun (rr : Foray_core.Validate.ref_report) ->
            Printf.printf "  site %x [%s]: %d/%d exact, %d rebase(s)\n"
              rr.site
              (String.concat ">" (List.map string_of_int rr.path))
              rr.exact rr.checked rr.rebases)
          rep.refs;
        0)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Replay the trace against the extracted model (fidelity check)")
    Term.(const run $ prog_arg $ nexec_arg $ nloc_arg)

(* ---- verify ----------------------------------------------------------- *)

module Verify = Foray_verify.Verify

(* Deliberately damage the extracted model before replay: add DELTA to
   the first reference's innermost coefficient (or to its constant term
   when no iterator survived). The verifier must then refute the model
   with a faithful counterexample — EXPERIMENTS.md walks through one. *)
let perturb_model delta (m : Foray_core.Model.t) =
  let hit = ref false in
  let mref (r : Foray_core.Model.mref) =
    if !hit then r
    else begin
      hit := true;
      match r.terms with
      | (c, lid) :: rest -> { r with terms = (c + delta, lid) :: rest }
      | [] -> { r with const = r.const + delta }
    end
  in
  let rec mloop (l : Foray_core.Model.mloop) =
    {
      l with
      Foray_core.Model.refs = List.map mref l.refs;
      subs = List.map mloop l.subs;
    }
  in
  { m with Foray_core.Model.loops = List.map mloop m.loops }

let verify_cmd =
  let run prog nexec nloc scalars shards jobs strict json perturb =
    guard ~json (fun () ->
        let thresholds = Foray_core.Filter.{ nexec; nloc } in
        (* Render the verdicts and map them onto the exit contract:
           0 all proved, 1 any divergence (printed counterexample),
           3 proved-but-degraded. *)
        let finish ?(degraded = []) model events =
          let model =
            match perturb with
            | None -> model
            | Some d -> perturb_model d model
          in
          let rep = Verify.verify model events in
          if json then print_endline (Verify.report_to_json rep)
          else print_string (Verify.report_to_string rep);
          if Verify.diverged rep > 0 then begin
            (match Verify.first_divergence rep with
            | Some (rv, cx) when not json ->
                Printf.eprintf "foraygen verify: %s diverges: %s\n"
                  (Foray_core.Model.array_name rv.Verify.mref.site)
                  (Verify.counterexample_to_string cx)
            | _ -> ());
            1
          end
          else finish_degraded ~strict ~json degraded
        in
        if looks_like_trace prog then
          (* A stored trace: extract the model from it, then replay the
             same stream against the model. *)
          match
            Foray_core.Pipeline.analyze_trace ~strict ~shards ?jobs prog
          with
          | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
              fail_error ~json
                (Ferr.Trace_corrupt
                   { offset; kind; events_salvaged = events_before })
          | Ok ((tree, _), salvage) -> (
              let model = Foray_core.Model.of_tree ~thresholds tree in
              match Foray_trace.Tracefile.read_events prog with
              | Error { Foray_trace.Tracefile.offset; kind; events_before } ->
                  fail_error ~json
                    (Ferr.Trace_corrupt
                       { offset; kind; events_salvaged = events_before })
              | Ok (events, _) ->
                  finish
                    ~degraded:(salvage_degradations salvage)
                    model (Array.to_list events))
        else
          match load_source prog with
          | Error e -> fail_error ~json e
          | Ok src -> (
              let p = Minic.Parser.program src in
              match
                Foray_core.Pipeline.run_offline ~config:(config_of scalars)
                  ~thresholds ~shards ?jobs p
              with
              | Error e -> fail_error ~json e
              | Ok (o, events) ->
                  finish ~degraded:o.Foray_core.Pipeline.degraded
                    o.Foray_core.Pipeline.result.Foray_core.Pipeline.model
                    events))
  in
  let perturb_arg =
    let doc =
      "Add $(docv) to the first reference's innermost coefficient (or its \
       constant term when it has none) before replaying — a deliberately \
       damaged model, to demonstrate the counterexample machinery."
    in
    Arg.(value & opt (some int) None & info [ "perturb" ] ~docv:"DELTA" ~doc)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Replay the extracted model against the recorded access stream \
          and render a verdict per reference: proved, or diverges with \
          the first-divergence counterexample (loop context, iteration \
          vector, predicted vs actual address). Exit 0 when every \
          reference proves, 1 on any divergence, 3 proved-but-degraded.")
    Term.(
      const run $ prog_arg $ nexec_arg $ nloc_arg $ scalars_arg $ shards_arg
      $ shard_jobs_arg $ strict_arg $ json_errors_arg $ perturb_arg)

(* ---- stability --------------------------------------------------------- *)

let stability_cmd =
  let run prog seeds jobs =
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src ->
            let prog = Minic.Parser.program src in
            let rep = Foray_core.Stability.study ~jobs ~seeds prog in
            print_string (Foray_core.Stability.to_string rep);
            0)
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) [ 1; 42; 1337 ]
      & info [ "seeds" ] ~doc:"Input seeds to profile with (comma separated).")
  in
  Cmd.v
    (Cmd.info "stability"
       ~doc:
         "Compare models extracted under different profiling inputs \
          (the paper's future-work study)")
    Term.(const run $ prog_arg $ seeds_arg $ jobs_arg)

(* ---- compare ----------------------------------------------------------- *)

let compare_cmd =
  let run capacity jobs =
    let results =
      Foray_util.Parallel.map ~jobs
        (fun b -> Foray_report.Memcompare.run b ~capacity)
        Foray_suite.Suite.all
    in
    print_string (Foray_report.Memcompare.table ~capacity results);
    0
  in
  let cap_arg =
    Arg.(
      value & opt int 2048
      & info [ "capacity" ] ~doc:"On-chip capacity in bytes.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Cache vs SPM-with-FORAY-buffers energy over the suite")
    Term.(const run $ cap_arg $ jobs_arg)

(* ---- tables --------------------------------------------------------- *)

let tables_cmd =
  let run nexec nloc jobs =
    let thresholds = Foray_core.Filter.{ nexec; nloc } in
    let reports = Foray_report.Report.report_all ~thresholds ~jobs () in
    print_string (Foray_report.Report.table1 reports);
    print_newline ();
    print_string (Foray_report.Report.table2 reports);
    print_newline ();
    print_string (Foray_report.Report.table3 reports);
    print_newline ();
    print_string (Foray_report.Report.headline reports);
    0
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Reproduce the paper's Tables I-III over the benchmark suite")
    Term.(const run $ nexec_arg $ nloc_arg $ jobs_arg)

(* ---- spm ------------------------------------------------------------ *)

let spm_cmd =
  let run prog nexec nloc size sizes transformed fuse strategy seed budget
      deadline_ms restarts explore_fusion jobs =
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src ->
        let r = run_pipeline src ~nexec ~nloc ~scalars:true in
        let cfg =
          {
            Foray_spm.Stochastic.default_config with
            seed;
            budget;
            deadline_ms;
            restarts;
            jobs = max 1 jobs;
          }
        in
        let strat =
          match strategy with
          | `Optimal -> Foray_spm.Dse.Optimal
          | `Greedy -> Foray_spm.Dse.Greedy
          | `Stochastic -> Foray_spm.Dse.Stochastic cfg
        in
        if explore_fusion && strategy <> `Stochastic then begin
          prerr_endline
            "foraygen: --explore-fusion searches the joint fusion space, \
             which only --strategy stochastic can; rerun with it";
          2
        end
        else begin
          let sweep_sizes =
            match (size, sizes) with
            | Some s, _ -> [ s ]
            | None, Some l -> l
            | None, None -> Foray_spm.Dse.default_sizes
          in
          let report_search s (sol : Foray_spm.Dse.solution) =
            Option.iter
              (fun st ->
                Format.eprintf "[%dB] %a" s Foray_spm.Stochastic.pp_stats st)
              sol.search
          in
          if explore_fusion then begin
            List.iter
              (fun s ->
                let sol =
                  Foray_spm.Dse.solve_fused r.model ~spm_bytes:s cfg
                in
                Format.printf "%a@." Foray_spm.Dse.pp_selection sol.selection;
                report_search s sol)
              sweep_sizes;
            0
          end
          else begin
            let cands = Foray_spm.Reuse.candidates ~fuse r.model in
            Printf.printf "%d buffer candidate(s)\n" (List.length cands);
            List.iter
              (fun c -> Format.printf "  %a@." Foray_spm.Reuse.pp c)
              cands;
            (* with the stochastic strategy the ensemble owns the pool;
               otherwise parallelize across sweep sizes *)
            let size_jobs =
              match strat with Foray_spm.Dse.Stochastic _ -> 1 | _ -> jobs
            in
            let sols =
              Foray_util.Parallel.map ~jobs:size_jobs
                (fun s ->
                  (s, Foray_spm.Dse.solve ~strategy:strat cands ~spm_bytes:s))
                sweep_sizes
            in
            List.iter
              (fun (s, (sol : Foray_spm.Dse.solution)) ->
                Format.printf "%a@." Foray_spm.Dse.pp_selection sol.selection;
                report_search s sol)
              sols;
            (match (size, transformed, sols) with
            | Some _, true, [ (_, sol) ] ->
                if fuse then
                  prerr_endline
                    "--transformed requires unfused buffers; rerun without \
                     --fuse"
                else print_string (Foray_spm.Transform.apply r.model sol.selection)
            | _ -> ());
            0
          end
        end)
  in
  let size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "size" ] ~doc:"SPM size in bytes (default: sweep --sizes).")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "sizes" ] ~docv:"LIST"
          ~doc:
            "Comma-separated SPM sweep sizes in bytes (default: 256,512,...,\
             16384).")
  in
  let transformed_arg =
    Arg.(
      value & flag
      & info [ "transformed" ]
          ~doc:"Print the buffer-transformed FORAY model (needs --size).")
  in
  let fuse_arg =
    Arg.(
      value & flag
      & info [ "fuse" ]
          ~doc:"Fuse same-stride overlapping references into shared buffers.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("optimal", `Optimal);
               ("greedy", `Greedy);
               ("stochastic", `Stochastic);
             ])
          `Optimal
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Selection strategy: $(b,optimal) (exhaustive grouped knapsack), \
             $(b,greedy) (benefit density) or $(b,stochastic) (simulated \
             annealing; see --seed, --budget-proposals, --deadline-ms, \
             --restarts).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"PRNG seed for the stochastic strategy.")
  in
  let budget_arg =
    Arg.(
      value & opt int 20_000
      & info [ "budget-proposals" ]
          ~doc:"Total proposals for the stochastic ensemble.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ]
          ~doc:
            "Anytime cutoff for the stochastic search in milliseconds \
             (returns the best placement found so far).")
  in
  let restarts_arg =
    Arg.(
      value & opt int 4
      & info [ "restarts" ]
          ~doc:"Independent annealing chains in the stochastic ensemble.")
  in
  let explore_fusion_arg =
    Arg.(
      value & flag
      & info [ "explore-fusion" ]
          ~doc:
            "Search the joint fusion x placement space (every fusable \
             reference run may independently share one buffer); requires \
             --strategy stochastic — the configuration count is exponential \
             in the fusable runs, beyond exhaustive enumeration.")
  in
  Cmd.v
    (Cmd.info "spm"
       ~doc:"Phase II: SPM reuse analysis and design-space exploration")
    Term.(
      const run $ prog_arg $ nexec_arg $ nloc_arg $ size_arg $ sizes_arg
      $ transformed_arg $ fuse_arg $ strategy_arg $ seed_arg $ budget_arg
      $ deadline_arg $ restarts_arg $ explore_fusion_arg $ jobs_arg)

(* ---- metrics -------------------------------------------------------- *)

let metrics_cmd =
  let run prog nexec nloc scalars out check verbose openmetrics =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src ->
        Obs.reset ();
        Obs.set_enabled true;
        with_simulated_trace ~scalars src (fun tmp ->
            let tree = Foray_core.Looptree.create () in
            let tstats = Foray_trace.Tstats.create () in
            let sink =
              Foray_trace.Event.tee
                (Foray_core.Looptree.sink tree)
                (Foray_trace.Tstats.sink tstats)
            in
            Foray_trace.Tracefile.iter tmp sink;
            Foray_core.Looptree.flush_metrics tree;
            let thresholds = Foray_core.Filter.{ nexec; nloc } in
            ignore (Foray_core.Model.of_tree ~thresholds tree));
        Obs.set_enabled false;
        if openmetrics then print_string (Obs.to_openmetrics ())
        else print_string (Obs.to_table ());
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Obs.to_json ());
                output_char oc '\n');
            Printf.eprintf "metrics written to %s\n%!" path);
        if check then begin
          (* The counters every healthy end-to-end run must move. *)
          let required =
            [ "interp.steps"; "interp.accesses"; "trace.events_written";
              "trace.events_read"; "looptree.nodes"; "infer.refs_seen" ]
          in
          let missing =
            List.filter
              (fun name ->
                match Obs.value name with
                | Some v -> v <= 0
                | None -> true)
              required
          in
          if missing = [] then 0
          else begin
            Printf.eprintf "metrics check FAILED; missing or zero: %s\n"
              (String.concat ", " missing);
            1
          end
        end
        else 0)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Also write the metrics as JSON to $(docv).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero unless every pipeline stage reported activity \
             (simulation, trace I/O, loop tree, inference).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print structured observability events to stderr.")
  in
  let openmetrics_arg =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Print the registry in the Prometheus/OpenMetrics text \
             exposition format instead of the human-readable table.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the full simulate-trace-analyze flow with counters enabled \
          and report them")
    Term.(
      const run $ prog_arg $ nexec_arg $ nloc_arg $ scalars_arg $ out_arg
      $ check_arg $ verbose_arg $ openmetrics_arg)

(* ---- explain -------------------------------------------------------- *)

let explain_cmd =
  let run prog nexec nloc ref_site json =
    guard (fun () ->
        match load_source prog with
        | Error e -> fail_error e
        | Ok src -> (
        let site =
          match ref_site with
          | None -> Ok None
          | Some s -> (
              let s =
                if String.length s > 2 && String.sub s 0 2 = "0x" then s
                else "0x" ^ s
              in
              match int_of_string_opt s with
              | Some n -> Ok (Some n)
              | None -> Error s)
        in
        match site with
        | Error s ->
            Printf.eprintf "not a hex site id: %s\n" s;
            1
        | Ok site ->
            let thresholds = Foray_core.Filter.{ nexec; nloc } in
            let t = Foray_report.Explain.run_source ~name:prog ~thresholds src in
            if json then print_endline (Foray_report.Explain.to_json ?site t)
            else print_string (Foray_report.Explain.render ?site t);
            0))
  in
  let ref_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ref" ] ~docv:"SITE"
          ~doc:
            "Restrict to one reference by its hex site id (as shown in the \
             model's array names, e.g. 4002a0).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Narrate Algorithm 3 per reference: how each coefficient was \
          solved, every misprediction and demotion, and the Step-4 verdict")
    Term.(
      const run $ prog_arg $ nexec_arg $ nloc_arg $ ref_arg $ json_arg)

(* ---- tracecheck ------------------------------------------------------ *)

let tracecheck_cmd =
  let run path =
    match Span.validate_chrome_file path with
    | Ok n ->
        Printf.printf "%s: OK (%d trace event(s), spans well-nested)\n" path n;
        0
    | Error e ->
        Printf.eprintf "%s: INVALID: %s\n" path e;
        1
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace JSON written by --trace-out.")
  in
  Cmd.v
    (Cmd.info "tracecheck"
       ~doc:
         "Validate an exported Chrome trace file: JSON shape and per-track \
          span nesting")
    Term.(const run $ path_arg)

(* ---- faults ---------------------------------------------------------- *)

let faults_cmd =
  let module FI = Foray_util.Faultinject in
  let run prog runs seed format json =
    guard ~json (fun () ->
        match load_source prog with
        | Error e -> fail_error ~json e
        | Ok src ->
            let p = Minic.Parser.program src in
            Minic.Sema.check_exn p;
            let instrumented = Foray_instrument.Annotate.program p in
            let tmp = Filename.temp_file "foraygen-fault" ".trace" in
            Fun.protect
              ~finally:(fun () ->
                try Sys.remove tmp with Sys_error _ -> ())
              (fun () ->
                Foray_trace.Tracefile.with_sink ~format tmp (fun sink ->
                    ignore (Minic_sim.Interp.run instrumented ~sink));
                let bytes =
                  In_channel.with_open_bin tmp In_channel.input_all
                in
                let thresholds = Foray_core.Filter.default in
                (* Feed one mutated trace through the offline analyzers:
                   salvage read, loop-tree reconstruction, model build. *)
                let analyze_mutant mutant =
                  Out_channel.with_open_bin tmp (fun oc ->
                      Out_channel.output_string oc mutant);
                  let tree = Foray_core.Looptree.create () in
                  match
                    Foray_trace.Tracefile.read tmp
                      (Foray_core.Looptree.sink tree)
                  with
                  | Error _ -> FI.Typed_failure
                  | Ok s ->
                      Foray_core.Looptree.flush_metrics tree;
                      ignore (Foray_core.Model.of_tree ~thresholds tree);
                      if s.resyncs = 0 && not s.truncated_tail then FI.Clean
                      else FI.Degraded
                in
                (* Stall models a wedged producer, not damaged bytes: run
                   the live pipeline under a tiny step budget and require a
                   clean degraded stop. *)
                let stalled_producer () =
                  let config =
                    { Minic_sim.Interp.default_config with max_steps = 64 }
                  in
                  match Foray_core.Pipeline.run ~config p with
                  | Ok { degraded = []; _ } -> FI.Clean
                  | Ok _ -> FI.Degraded
                  | Error _ -> FI.Typed_failure
                in
                let run_one kind mutant =
                  match kind with
                  | FI.Stall -> stalled_producer ()
                  | _ -> analyze_mutant mutant
                in
                let report =
                  FI.campaign ~seed ~runs ~bytes ~run:run_one
                in
                if json then
                  Printf.printf
                    "{\"runs\": %d, \"clean\": %d, \"degraded\": %d, \
                     \"typed\": %d, \"escaped\": %d}\n"
                    report.runs report.clean report.degraded report.typed
                    (List.length report.escaped)
                else print_string (FI.report_to_string report);
                if report.escaped = [] then 0 else 1))
  in
  let runs_arg =
    Arg.(
      value & opt int 500
      & info [ "runs" ] ~docv:"N" ~doc:"Number of mutated traces to try.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"PRNG seed; equal seeds replay the exact same campaign.")
  in
  let prog_arg =
    let doc =
      "Program whose trace is mutated: a benchmark name, figure name or \
       MiniC file (default fig4a)."
    in
    Arg.(value & pos 0 string "fig4a" & info [] ~docv:"PROGRAM" ~doc)
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("binary", Foray_trace.Tracefile.Binary);
               ("v2", Foray_trace.Tracefile.Binary2);
             ])
          Foray_trace.Tracefile.Binary
      & info [ "format" ]
          ~doc:"Trace format the mutants are written in: binary (v1) or v2.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection campaign: mutate a simulated trace hundreds of \
          ways (bit flips, truncation, duplication, garbage, zeroed spans, \
          stalls) and verify the pipeline always degrades or fails with a \
          typed error — never an escaped exception. Exit 0 iff no escapes.")
    Term.(
      const run $ prog_arg $ runs_arg $ seed_arg $ format_arg
      $ json_errors_arg)

(* ---- serve ----------------------------------------------------------- *)

module Serve = Foray_serve.Serve
module Sjson = Foray_serve.Json

let default_socket () =
  Filename.concat (Filename.get_temp_dir_name ()) "forayd.sock"

let serve_config ?access_log ?slow_ms ~socket ~jobs ~cache_mb ~max_steps_cap
    () =
  let base = Serve.default_config ~socket_path:socket in
  {
    base with
    Serve.jobs = (if jobs > 0 then jobs else base.Serve.jobs);
    cache_bytes = cache_mb * 1024 * 1024;
    max_steps_cap;
    access_log;
    slow_ms;
  }

(* Counter value out of a [metrics] response, the over-the-wire way (the
   smoke check must exercise the protocol, not peek at the in-process
   registry). *)
let wire_counter resp name =
  match Sjson.member "metrics" resp with
  | Some m -> (
      match Sjson.member "counters" m with
      | Some c -> (
          match Sjson.member name c with Some (Sjson.Int i) -> i | _ -> 0)
      | None -> 0)
  | None -> 0

(* The @serve-smoke contract: fresh daemon on a temp socket, cold analyze
   (a miss), warm analyze (a hit, byte-identical model), the hit visible
   through the metrics verb, then a clean shutdown that removes the
   socket. One process, no backgrounding — fits a dune rule. *)
let run_serve_smoke ~jobs ~cache_mb =
  let path = Serve.temp_socket_path () in
  let srv = Serve.start (serve_config ~socket:path ~jobs ~cache_mb ~max_steps_cap:None ()) in
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      incr failures;
      Printf.eprintf "serve-smoke: FAIL: %s\n" msg
    end
  in
  let c = Serve.Client.connect path in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      let analyze () =
        Serve.Client.rpc c
          [ ("op", "\"analyze\""); ("program", "\"adpcm\"") ]
      in
      let cold = analyze () in
      check (Sjson.member "status" cold = Some (Sjson.Str "ok"))
        "cold analyze did not succeed";
      check (Sjson.member "cached" cold = Some (Sjson.Bool false))
        "cold analyze claimed a cache hit";
      let warm = analyze () in
      check (Sjson.member "cached" warm = Some (Sjson.Bool true))
        "warm analyze was not served from the cache";
      check (Sjson.member "model" cold = Sjson.member "model" warm)
        "cached model differs from the uncached one";
      check (Sjson.member "model" cold <> None)
        "analyze response has no model";
      let metrics = Serve.Client.rpc c [ ("op", "\"metrics\"") ] in
      check (wire_counter metrics "serve.cache.hits" >= 1)
        "metrics verb shows no cache hit";
      check (wire_counter metrics "serve.cache.misses" >= 1)
        "metrics verb shows no cache miss");
  Serve.Client.shutdown path;
  Serve.wait srv;
  check (not (Sys.file_exists path)) "socket not removed on shutdown";
  if !failures = 0 then begin
    Printf.printf "serve-smoke: OK (cold miss, warm hit, clean shutdown)\n";
    0
  end
  else 1

(* The @verify-smoke contract: verify fig4a locally (every reference must
   prove), then ask a fresh daemon to verify the same program over the
   wire — the wire report must match the local one structurally, the warm
   repeat must come from the cache with the identical report, and the
   daemon must shut down cleanly. *)
let run_verify_smoke ~jobs ~cache_mb =
  (* Thresholds 1/1: fig4a is the paper's small figure nest, and the
     default Step-4 thresholds would purge its only reference. *)
  let thresholds = Foray_core.Filter.{ nexec = 1; nloc = 1 } in
  let local =
    match load_source "fig4a" with
    | Error e -> Ferr.raise_error e
    | Ok src -> (
        let p = Minic.Parser.program src in
        match Foray_core.Pipeline.run_offline ~thresholds p with
        | Error e -> Ferr.raise_error e
        | Ok (o, events) ->
            Verify.verify
              o.Foray_core.Pipeline.result.Foray_core.Pipeline.model events)
  in
  let path = Serve.temp_socket_path () in
  let srv =
    Serve.start
      (serve_config ~socket:path ~jobs ~cache_mb ~max_steps_cap:None ())
  in
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      incr failures;
      Printf.eprintf "verify-smoke: FAIL: %s\n" msg
    end
  in
  check (Verify.all_proved local) "local verify of fig4a has divergences";
  check (Verify.proved local > 0) "local verify of fig4a proved nothing";
  let local_json =
    match Sjson.parse (Verify.report_to_json local) with
    | Ok j -> Some j
    | Error _ -> None
  in
  check (local_json <> None) "local verify report is not valid JSON";
  let c = Serve.Client.connect path in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      let rpc () =
        Serve.Client.rpc c
          [
            ("op", "\"verify\""); ("program", "\"fig4a\""); ("nexec", "1");
            ("nloc", "1");
          ]
      in
      let cold = rpc () in
      check
        (Sjson.member "status" cold = Some (Sjson.Str "ok"))
        "cold verify did not succeed";
      check
        (Sjson.member "cached" cold = Some (Sjson.Bool false))
        "cold verify claimed a cache hit";
      check
        (Sjson.member "verify" cold = local_json)
        "wire verify report differs from the local one";
      let warm = rpc () in
      check
        (Sjson.member "cached" warm = Some (Sjson.Bool true))
        "warm verify was not served from the cache";
      check
        (Sjson.member "verify" warm = Sjson.member "verify" cold)
        "cached verify report differs from the uncached one");
  Serve.Client.shutdown path;
  Serve.wait srv;
  check (not (Sys.file_exists path)) "socket not removed on shutdown";
  if !failures = 0 then begin
    Printf.printf
      "verify-smoke: OK (%d reference(s) proved, wire report = local, warm \
       hit, clean shutdown)\n"
      (Verify.proved local);
    0
  end
  else 1

(* ---- top: live daemon dashboard -------------------------------------- *)

let jnum = function
  | Some (Sjson.Int i) -> float_of_int i
  | Some (Sjson.Float f) -> f
  | _ -> 0.0

let jint v = int_of_float (jnum v)

let window_stat j w name =
  jnum
    (Option.bind
       (Option.bind (Sjson.member "window" j) (Sjson.member w))
       (Sjson.member name))

let wire_gauge resp name =
  match Sjson.member "metrics" resp with
  | Some m -> (
      match Sjson.member "gauges" m with
      | Some g -> (
          match Sjson.member name g with Some (Sjson.Int i) -> i | _ -> 0)
      | None -> 0)
  | None -> 0

(* One metrics snapshot over the wire: raw response line (what
   [--json] prints) plus its parsed form. *)
let top_snapshot c =
  let raw = Serve.Client.request c "{\"op\": \"metrics\"}" in
  match Sjson.parse raw with
  | Ok j -> (raw, j)
  | Error msg -> failwith ("top: bad metrics response: " ^ msg)

let render_top j =
  let b = Buffer.create 1024 in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.bprintf b "\027[1mforayd top\027[0m  %02d:%02d:%02d\n\n"
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
  Printf.bprintf b "  \027[1m%-8s %9s %9s %9s %7s %7s\027[0m\n" "window"
    "rps" "p50 ms" "p99 ms" "hit%" "err%";
  List.iter
    (fun w ->
      Printf.bprintf b "  %-8s %9.1f %9d %9d %6.1f%% %6.1f%%\n" w
        (window_stat j w "rps")
        (jint
           (Option.bind
              (Option.bind (Sjson.member "window" j) (Sjson.member w))
              (Sjson.member "p50_ms")))
        (jint
           (Option.bind
              (Option.bind (Sjson.member "window" j) (Sjson.member w))
              (Sjson.member "p99_ms")))
        (100.0 *. window_stat j w "hit_rate")
        (100.0 *. window_stat j w "error_rate"))
    [ "10s"; "60s"; "300s" ];
  Printf.bprintf b
    "\n  cache: %d hits / %d misses lifetime, %d entries, %d KiB\n"
    (wire_counter j "serve.cache.hits")
    (wire_counter j "serve.cache.misses")
    (wire_gauge j "serve.cache.entries")
    (wire_gauge j "serve.cache.bytes" / 1024);
  Printf.bprintf b
    "  pool: %d busy, %d queued   conns: %d   gc: %d major kwords, %d \
     compactions\n"
    (wire_gauge j "serve.pool.busy")
    (wire_gauge j "serve.pool.pending")
    (wire_gauge j "serve.connections.active")
    (wire_gauge j "runtime.gc.major_words" / 1000)
    (wire_gauge j "runtime.gc.compactions");
  (match Sjson.member "slow" j with
  | Some (Sjson.Arr (_ :: _ as slow)) ->
      Printf.bprintf b "\n  \027[1mlast slow requests\027[0m\n";
      List.iter
        (fun e ->
          Printf.bprintf b "  rid %-6d %-10s %8.1f ms\n"
            (jint (Sjson.member "rid" e))
            (match Sjson.member "op" e with Some (Sjson.Str s) -> s | _ -> "?")
            (jnum (Sjson.member "ms" e)))
        slow
  | _ -> ());
  Buffer.contents b

let run_top ~socket ~interval ~once ~json =
  let c = Serve.Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      let rec loop () =
        let raw, j = top_snapshot c in
        if json then print_endline raw
        else begin
          if not once then print_string "\027[2J\027[H";
          print_string (render_top j);
          flush stdout
        end;
        if once then 0
        else begin
          Unix.sleepf interval;
          loop ()
        end
      in
      loop ())

(* ---- telemetry smoke -------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The @telemetry-smoke contract: daemon with an access log and slow-ms 0
   on a temp socket; brief soak; the metrics_text scrape carries the
   serve families and non-zero window gauges; a "trace": true analyze
   returns a span tree whose root duration equals the reported latency;
   top --once --json works against the live daemon; after shutdown the
   access log is valid JSONL with at least one slow span breakdown. *)
let run_telemetry_smoke ~jobs ~cache_mb =
  let path = Serve.temp_socket_path () in
  let log_path = Filename.temp_file "foray-access" ".jsonl" in
  let srv =
    Serve.start
      (serve_config ~access_log:log_path ~slow_ms:0 ~socket:path ~jobs
         ~cache_mb ~max_steps_cap:None ())
  in
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      incr failures;
      Printf.eprintf "telemetry-smoke: FAIL: %s\n" msg
    end
  in
  let c = Serve.Client.connect path in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      (* soak: first analyze is a miss, the rest hits *)
      for _ = 1 to 3 do
        ignore
          (Serve.Client.rpc c
             [ ("op", "\"analyze\""); ("program", "\"adpcm\"") ]);
        ignore
          (Serve.Client.rpc c
             [ ("op", "\"extract\""); ("program", "\"adpcm\"") ])
      done;
      (* inline span tree, forced uncached so the pool actually runs *)
      let tr =
        Serve.Client.rpc c
          [
            ("op", "\"analyze\"");
            ("program", "\"adpcm\"");
            ("cache", "false");
            ("trace", "true");
          ]
      in
      check (Sjson.member "rid" tr <> None) "response carries no rid";
      (match (Sjson.member "trace" tr, Sjson.member "ms" tr) with
      | Some trace, Some ms ->
          let ms = jnum (Some ms) in
          let dur = jnum (Sjson.member "dur_us" trace) in
          check
            (Sjson.member "name" trace = Some (Sjson.Str "request"))
            "trace root is not \"request\"";
          check
            (Float.abs (dur -. (ms *. 1000.0))
            <= Float.max 1000.0 (0.05 *. ms *. 1000.0))
            "trace root duration does not match reported latency";
          check
            (match Sjson.member "children" trace with
            | Some (Sjson.Arr (_ :: _)) -> true
            | _ -> false)
            "uncached traced analyze has no child spans"
      | _ -> check false "trace:true response lacks trace/ms fields");
      (* OpenMetrics scrape over the wire *)
      let mt = Serve.Client.rpc c [ ("op", "\"metrics_text\"") ] in
      (match Sjson.member "text" mt with
      | Some (Sjson.Str text) ->
          let has needle label =
            check (contains text needle) ("metrics_text lacks " ^ label)
          in
          has "# EOF\n" "the EOF terminator";
          has "# TYPE serve_requests counter" "the serve_requests family";
          has "serve_requests_total{op=\"analyze\"}" "the analyze counter";
          has "# TYPE serve_request_ms histogram" "the latency histogram";
          has "serve_request_ms_bucket{le=\"+Inf\"}" "the +Inf bucket";
          has "serve_request_ms_sum" "the histogram sum";
          has "serve_request_ms_count" "the histogram count";
          has "foray_window_rps{window=\"10s\"}" "the 10s window gauge";
          has "serve_pool_busy" "the pool gauge";
          has "runtime_gc_major_words" "the GC gauge"
      | _ -> check false "metrics_text response has no text field");
      (* sliding-window stats over the wire *)
      let m = Serve.Client.rpc c [ ("op", "\"metrics\"") ] in
      check (window_stat m "10s" "requests" > 0.0) "10s window saw no requests";
      check (window_stat m "10s" "rps" > 0.0) "10s window rps is zero";
      check
        (window_stat m "10s" "hit_rate" > 0.0)
        "10s window hit rate is zero despite warm repeats";
      check
        (match Sjson.member "slow" m with
        | Some (Sjson.Arr (_ :: _)) -> true
        | _ -> false)
        "slow list is empty at slow-ms 0");
  (* the dashboard's scripting mode against the live daemon *)
  (match run_top ~socket:path ~interval:1.0 ~once:true ~json:true with
  | 0 -> ()
  | _ -> check false "top --once --json failed"
  | exception e ->
      check false ("top --once --json raised: " ^ Printexc.to_string e));
  Serve.Client.shutdown path;
  Serve.wait srv;
  (* the access log must be valid JSONL, with the slow breakdown inline *)
  let lines =
    In_channel.with_open_text log_path (fun ic -> In_channel.input_lines ic)
  in
  check (List.length lines >= 8) "access log is missing lines";
  List.iter
    (fun l ->
      match Sjson.parse l with
      | Ok j ->
          check (Sjson.member "rid" j <> None) "access-log line lacks rid";
          check (Sjson.member "ms" j <> None) "access-log line lacks ms"
      | Error msg -> check false ("access-log line does not parse: " ^ msg))
    lines;
  check
    (List.exists (fun l -> contains l "\"slow\": true") lines)
    "no slow request marked in the access log";
  check
    (List.exists (fun l -> contains l "\"spans\": ") lines)
    "no span breakdown in the access log";
  check
    (List.exists (fun l -> contains l "\"cached\": true") lines)
    "no cache hit visible in the access log";
  (try Sys.remove log_path with Sys_error _ -> ());
  if !failures = 0 then begin
    Printf.printf
      "telemetry-smoke: OK (openmetrics scrape, inline trace, window \
       stats, access log, top)\n";
    0
  end
  else 1

let jobs_serve_arg =
  let doc = "Worker domains of the analysis pool (0 = one per core)." in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_mb_arg =
  let doc = "Model cache bound in MiB; 0 disables caching." in
  Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MB" ~doc)

let serve_cmd =
  let run socket jobs cache_mb max_steps access_log slow_ms smoke tsmoke
      vsmoke json =
    guard ~json (fun () ->
        if tsmoke then run_telemetry_smoke ~jobs ~cache_mb
        else if vsmoke then run_verify_smoke ~jobs ~cache_mb
        else if smoke then run_serve_smoke ~jobs ~cache_mb
        else begin
          let socket = Option.value socket ~default:(default_socket ()) in
          let srv =
            Serve.start
              (serve_config ?access_log ?slow_ms ~socket ~jobs ~cache_mb
                 ~max_steps_cap:max_steps ())
          in
          Printf.eprintf "forayd: listening on %s\n%!" socket;
          Serve.wait srv;
          0
        end)
  in
  let socket_arg =
    let doc =
      "Unix-domain socket to listen on (default: forayd.sock under the \
       temp directory). A stale socket file is replaced."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let cap_arg =
    let doc = "Server-side ceiling clamped onto every request's max_steps." in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSON line per request (ts, rid, op, digest, cache \
       hit/miss, degradations, latency) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  let slow_ms_arg =
    let doc =
      "Slow-request threshold: requests at or over $(docv) milliseconds \
       log their full span breakdown to the access log and appear in the \
       metrics op's slow list (and foraygen top)."
    in
    Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let smoke_arg =
    let doc =
      "Self-test: daemon on a temp socket, cold analyze, warm analyze \
       (must hit the cache, byte-identical model), metrics check, clean \
       shutdown. Exit 0 iff all checks pass."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let tsmoke_arg =
    let doc =
      "Telemetry self-test: daemon with access log and slow-ms 0 on a \
       temp socket, brief soak, OpenMetrics scrape, inline trace tree, \
       window stats, top --once --json, access-log validation. Exit 0 \
       iff all checks pass."
    in
    Arg.(value & flag & info [ "telemetry-smoke" ] ~doc)
  in
  let vsmoke_arg =
    let doc =
      "Verification self-test: verify fig4a locally, then over the wire \
       against a fresh daemon on a temp socket — the reports must match, \
       the warm repeat must hit the cache, the shutdown must be clean. \
       Exit 0 iff all checks pass."
    in
    Arg.(value & flag & info [ "verify-smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run forayd: a daemon answering analyze/extract/metrics requests \
          over a Unix-domain socket (newline-delimited JSON), with an LRU \
          model cache and the documented E_* error taxonomy on the wire.")
    Term.(
      const run $ socket_arg $ jobs_serve_arg $ cache_mb_arg $ cap_arg
      $ access_log_arg $ slow_ms_arg $ smoke_arg $ tsmoke_arg $ vsmoke_arg
      $ json_errors_arg)

let serve_bench_cmd =
  let run socket clients requests programs cold jobs cache_mb json =
    guard ~json (fun () ->
        let programs =
          if programs = [] then [ "adpcm"; "fig4a"; "fig7a" ] else programs
        in
        let cold_program = Option.value cold ~default:(List.hd programs) in
        (* no --socket: spin up a private daemon for the duration *)
        let own, path =
          match socket with
          | Some p -> (None, p)
          | None ->
              let path = Serve.temp_socket_path () in
              let srv =
                Serve.start
                  (serve_config ~socket:path ~jobs ~cache_mb
                     ~max_steps_cap:None ())
              in
              (Some srv, path)
        in
        Fun.protect
          ~finally:(fun () ->
            match own with
            | Some srv ->
                (try Serve.Client.shutdown path with _ -> ());
                Serve.wait srv
            | None -> ())
          (fun () ->
            let r =
              Serve.bench ~socket:path ~clients ~requests ~programs
                ~cold_program
            in
            if json then print_endline (Serve.bench_result_to_json r)
            else print_string (Serve.bench_result_to_string r));
        0)
  in
  let socket_arg =
    let doc =
      "Drive an already-running daemon at this socket instead of starting \
       (and shutting down) a private one."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let clients_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Requests per client (alternating analyze/extract)." in
    Arg.(value & opt int 25 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let programs_arg =
    let doc = "Comma-separated program mix (default: adpcm,fig4a,fig7a)." in
    Arg.(value & opt (list string) [] & info [ "programs" ] ~docv:"NAMES" ~doc)
  in
  let cold_arg =
    let doc =
      "Program for the cold/warm cache probe (default: first of the mix)."
    in
    Arg.(value & opt (some string) None & info [ "cold" ] ~docv:"NAME" ~doc)
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Load-generate against forayd: concurrent clients with a mixed \
          analyze/extract workload; report req/s, p50/p99 latency, cache \
          hit rate and the cold-vs-warm speedup.")
    Term.(
      const run $ socket_arg $ clients_arg $ requests_arg $ programs_arg
      $ cold_arg $ jobs_serve_arg $ cache_mb_arg $ json_errors_arg)

let top_cmd =
  let run socket interval once json =
    guard (fun () ->
        let socket = Option.value socket ~default:(default_socket ()) in
        run_top ~socket ~interval ~once ~json)
  in
  let socket_arg =
    let doc = "Socket of the daemon to watch (default: forayd.sock)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let once_arg =
    let doc = "Print one snapshot and exit instead of refreshing." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let json_arg =
    let doc =
      "Print the raw metrics response (JSON, one line per poll) instead \
       of the ANSI view — for scripting, usually with $(b,--once)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running forayd: polls the daemon's metrics \
          op and renders sliding-window rps/p50/p99/hit-rate, pool and GC \
          gauges and the last slow requests.")
    Term.(const run $ socket_arg $ interval_arg $ once_arg $ json_arg)

(* ---- main ----------------------------------------------------------- *)

let () =
  Span.setup_env ();
  let doc =
    "FORAY-GEN: profile-based extraction of affine memory models \
     (reproduction of Issenin & Dutt, DATE 2005)"
  in
  let info = Cmd.info "foraygen" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; extract_cmd; annotate_cmd; trace_cmd; analyze_cmd;
            tree_cmd; validate_cmd; verify_cmd; stability_cmd; compare_cmd;
            tables_cmd; spm_cmd; metrics_cmd; explain_cmd; tracecheck_cmd;
            faults_cmd; serve_cmd; serve_bench_cmd; top_cmd ]))
